"""Iterative data-flow analyses over the CFG.

Provides scalar liveness (backward may-analysis) and reaching
definitions (forward may-analysis).  These feed dead-code elimination,
the lifetime analysis used by register binding ("a variable life-time
analysis pass determines which variables are actually mapped to
registers", paper Section 3.1.2), and diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, List, Set, Tuple

from repro.ir.cfg import ControlFlowGraph
from repro.ir.htg import FunctionHTG, HTGNode
from repro.ir.operations import Operation


@dataclass
class LivenessResult:
    """Live-in/live-out sets per CFG node plus per-operation live-out."""

    live_in: Dict[int, Set[str]] = field(default_factory=dict)
    live_out: Dict[int, Set[str]] = field(default_factory=dict)
    # op uid -> variables live immediately after the op
    op_live_out: Dict[int, Set[str]] = field(default_factory=dict)


def compute_liveness(
    cfg: ControlFlowGraph, boundary_live: AbstractSet[str] = frozenset()
) -> LivenessResult:
    """Backward liveness over scalar variables.

    *boundary_live* holds variables that must be considered live at
    function exit (design outputs that live in scalars).
    """
    result = LivenessResult()
    nodes = cfg.nodes()
    for node in nodes:
        result.live_in[node.node_id] = set()
        result.live_out[node.node_id] = set()
    result.live_out[cfg.exit.node_id] = set(boundary_live)
    result.live_in[cfg.exit.node_id] = set(boundary_live)

    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node.node_id == cfg.exit.node_id:
                continue
            out: Set[str] = set()
            for succ in cfg.successors(node):
                out |= result.live_in[succ.node_id]
            live_in = node.use_set() | (out - node.def_set())
            if out != result.live_out[node.node_id]:
                result.live_out[node.node_id] = out
                changed = True
            if live_in != result.live_in[node.node_id]:
                result.live_in[node.node_id] = live_in
                changed = True

    # Per-operation live-out within each block: walk ops backwards.
    for node in nodes:
        if node.kind != "block" or node.block is None:
            continue
        live = set(result.live_out[node.node_id])
        for op in reversed(node.block.ops):
            result.op_live_out[op.uid] = set(live)
            live -= op.writes()
            live |= op.reads()
    return result


# A definition site: (variable, op uid).  uid 0 is the synthetic
# "defined at entry" marker for parameters and boundary inputs.
Definition = Tuple[str, int]


@dataclass
class ReachingDefsResult:
    """Reaching-definition sets per CFG node."""

    reach_in: Dict[int, FrozenSet[Definition]] = field(default_factory=dict)
    reach_out: Dict[int, FrozenSet[Definition]] = field(default_factory=dict)


def compute_reaching_definitions(
    cfg: ControlFlowGraph, entry_variables: AbstractSet[str] = frozenset()
) -> ReachingDefsResult:
    """Forward reaching definitions over scalar variables."""
    result = ReachingDefsResult()
    nodes = cfg.nodes()

    gen: Dict[int, Set[Definition]] = {}
    kill_vars: Dict[int, Set[str]] = {}
    for node in nodes:
        node_gen: Set[Definition] = set()
        node_kill: Set[str] = set()
        if node.kind == "block" and node.block is not None:
            last_def: Dict[str, int] = {}
            for op in node.block.ops:
                for var in op.writes():
                    last_def[var] = op.uid
                    node_kill.add(var)
            node_gen = {(var, uid) for var, uid in last_def.items()}
        gen[node.node_id] = node_gen
        kill_vars[node.node_id] = node_kill
        result.reach_in[node.node_id] = frozenset()
        result.reach_out[node.node_id] = frozenset()

    entry_defs = frozenset((var, 0) for var in entry_variables)
    result.reach_out[cfg.entry.node_id] = entry_defs

    changed = True
    while changed:
        changed = False
        for node in cfg.reverse_postorder():
            if node.node_id == cfg.entry.node_id:
                continue
            incoming: Set[Definition] = set()
            for pred in cfg.predecessors(node):
                incoming |= result.reach_out[pred.node_id]
            reach_in = frozenset(incoming)
            survivors = {
                (var, uid)
                for var, uid in reach_in
                if var not in kill_vars[node.node_id]
            }
            reach_out = frozenset(survivors | gen[node.node_id])
            if reach_in != result.reach_in[node.node_id]:
                result.reach_in[node.node_id] = reach_in
                changed = True
            if reach_out != result.reach_out[node.node_id]:
                result.reach_out[node.node_id] = reach_out
                changed = True
    return result


def definitions_of(func: FunctionHTG, variable: str) -> List[Operation]:
    """All operations in *func* that write *variable*."""
    return [op for op in func.walk_operations() if variable in op.writes()]


def uses_of(func: FunctionHTG, variable: str) -> List[Operation]:
    """All operations in *func* that read *variable* (conditions of
    if/loop nodes are not operations and are reported separately by
    :func:`condition_uses_of`)."""
    return [op for op in func.walk_operations() if variable in op.reads()]


def condition_uses_of(func: FunctionHTG, variable: str) -> List[HTGNode]:
    """HTG nodes whose condition reads *variable*."""
    from repro.ir import expr_utils
    from repro.ir.htg import IfNode, LoopNode

    nodes: List[HTGNode] = []
    for node in func.walk_nodes():
        if isinstance(node, (IfNode, LoopNode)) and node.cond is not None:
            if variable in expr_utils.variables_read(node.cond):
                nodes.append(node)
    return nodes
