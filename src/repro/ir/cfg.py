"""Control-flow graph derived from the HTG.

The structured HTG remains the primary IR; this module flattens a
function into a CFG for the iterative data-flow analyses (liveness,
reaching definitions) and for the chaining-trail enumeration, which
walks paths "backwards from the basic block that operation 4 is in"
(paper Section 3.1.1).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set

import networkx as nx

from repro.frontend.ast_nodes import Expr
from repro.ir import expr_utils
from repro.ir.basic_block import BasicBlock
from repro.ir.htg import (
    BlockNode,
    BreakNode,
    FunctionHTG,
    HTGNode,
    IfNode,
    LoopNode,
)
from repro.ir.operations import OpKind

_cfg_node_counter = itertools.count(0)


class CFGNode:
    """A node of the flattened control-flow graph.

    Kinds:

    * ``entry`` / ``exit`` — unique function boundaries;
    * ``block`` — wraps a :class:`BasicBlock` (shared with the HTG, not
      copied, so analyses see live IR state);
    * ``branch`` — evaluates a condition; successors are labelled
      true/false;
    * ``join`` — control-flow merge point after a conditional or loop.
    """

    def __init__(
        self,
        kind: str,
        block: Optional[BasicBlock] = None,
        cond: Optional[Expr] = None,
        htg_uid: Optional[int] = None,
    ) -> None:
        self.node_id = next(_cfg_node_counter)
        self.kind = kind
        self.block = block
        self.cond = cond
        self.htg_uid = htg_uid

    def use_set(self) -> Set[str]:
        """Upward-exposed scalar reads of this node."""
        if self.kind == "block" and self.block is not None:
            return self.block.upward_exposed_reads()
        if self.kind == "branch" and self.cond is not None:
            return expr_utils.variables_read(self.cond)
        return set()

    def def_set(self) -> Set[str]:
        """Scalar variables written by this node."""
        if self.kind == "block" and self.block is not None:
            return self.block.variables_written()
        return set()

    def __repr__(self) -> str:
        label = self.block.label if self.block is not None else self.kind
        return f"CFGNode({self.node_id}, {self.kind}, {label})"


class ControlFlowGraph:
    """CFG with true/false-labelled edges over :class:`CFGNode`."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self.entry = CFGNode("entry")
        self.exit = CFGNode("exit")
        self.graph.add_node(self.entry.node_id, data=self.entry)
        self.graph.add_node(self.exit.node_id, data=self.exit)
        # basic block id -> CFG node, for op-to-node lookups
        self.block_index: Dict[int, CFGNode] = {}

    def add_node(self, node: CFGNode) -> CFGNode:
        self.graph.add_node(node.node_id, data=node)
        if node.kind == "block" and node.block is not None:
            self.block_index[node.block.bb_id] = node
        return node

    def add_edge(self, src: CFGNode, dst: CFGNode, label: Optional[str] = None) -> None:
        self.graph.add_edge(src.node_id, dst.node_id, label=label)

    def node(self, node_id: int) -> CFGNode:
        return self.graph.nodes[node_id]["data"]

    def nodes(self) -> List[CFGNode]:
        return [self.graph.nodes[n]["data"] for n in self.graph.nodes]

    def successors(self, node: CFGNode) -> List[CFGNode]:
        return [self.node(n) for n in self.graph.successors(node.node_id)]

    def predecessors(self, node: CFGNode) -> List[CFGNode]:
        return [self.node(n) for n in self.graph.predecessors(node.node_id)]

    def edge_label(self, src: CFGNode, dst: CFGNode) -> Optional[str]:
        return self.graph.edges[src.node_id, dst.node_id].get("label")

    def node_for_block(self, block: BasicBlock) -> CFGNode:
        try:
            return self.block_index[block.bb_id]
        except KeyError:
            raise KeyError(f"block {block.label} not in CFG") from None

    def reverse_postorder(self) -> List[CFGNode]:
        """Nodes in reverse post-order from entry (good iteration order
        for forward data-flow problems)."""
        order = list(nx.dfs_postorder_nodes(self.graph, self.entry.node_id))
        order.reverse()
        return [self.node(n) for n in order]


class _CFGBuilder:
    """Builds a CFG for one function by structural recursion on the HTG."""

    def __init__(self, func: FunctionHTG) -> None:
        self.func = func
        self.cfg = ControlFlowGraph()
        # Stack of loop-exit join nodes for break resolution.
        self._break_targets: List[CFGNode] = []

    def build(self) -> ControlFlowGraph:
        tail = self._lower_sequence(self.func.body, self.cfg.entry)
        if tail is not None:
            self.cfg.add_edge(tail, self.cfg.exit)
        return self.cfg

    def _lower_sequence(
        self, nodes: List[HTGNode], pred: Optional[CFGNode]
    ) -> Optional[CFGNode]:
        """Lower a node list; returns the node control falls out of, or
        ``None`` when the sequence always transfers control away
        (return/break)."""
        current = pred
        for node in nodes:
            if current is None:
                break  # unreachable code after return/break
            if isinstance(node, BlockNode):
                current = self._lower_block(node, current)
            elif isinstance(node, IfNode):
                current = self._lower_if(node, current)
            elif isinstance(node, LoopNode):
                current = self._lower_loop(node, current)
            elif isinstance(node, BreakNode):
                if not self._break_targets:
                    raise ValueError("break outside of loop")
                self.cfg.add_edge(current, self._break_targets[-1])
                current = None
            else:
                raise TypeError(f"unknown HTG node {node!r}")
        return current

    def _lower_block(self, node: BlockNode, pred: CFGNode) -> Optional[CFGNode]:
        cfg_node = self.cfg.add_node(
            CFGNode("block", block=node.block, htg_uid=node.uid)
        )
        self.cfg.add_edge(pred, cfg_node)
        for op in node.ops:
            if op.kind is OpKind.RETURN:
                self.cfg.add_edge(cfg_node, self.cfg.exit)
                return None
        return cfg_node

    def _lower_if(self, node: IfNode, pred: CFGNode) -> Optional[CFGNode]:
        branch = self.cfg.add_node(CFGNode("branch", cond=node.cond, htg_uid=node.uid))
        self.cfg.add_edge(pred, branch)
        join = CFGNode("join", htg_uid=node.uid)

        then_tail = self._lower_branch(node.then_branch, branch, "true")
        else_tail = self._lower_branch(node.else_branch, branch, "false")

        reachable = False
        for tail in (then_tail, else_tail):
            if tail is not None:
                if join.node_id not in self.cfg.graph:
                    self.cfg.add_node(join)
                self.cfg.add_edge(tail, join)
                reachable = True
        return join if reachable else None

    def _lower_branch(
        self, nodes: List[HTGNode], branch: CFGNode, label: str
    ) -> Optional[CFGNode]:
        if not nodes:
            # Empty branch: fall straight through the branch node.  A
            # passthrough join keeps edge labels unambiguous.
            passthrough = self.cfg.add_node(CFGNode("join"))
            self.cfg.add_edge(branch, passthrough, label=label)
            return passthrough
        # Give the branch a labelled edge into the first lowered node by
        # using a small anchor join node.
        anchor = self.cfg.add_node(CFGNode("join"))
        self.cfg.add_edge(branch, anchor, label=label)
        return self._lower_sequence(nodes, anchor)

    def _lower_loop(self, node: LoopNode, pred: CFGNode) -> Optional[CFGNode]:
        current = pred
        if node.init:
            init_block = BasicBlock(ops=node.init, label=f"loop{node.uid}_init")
            init_node = self.cfg.add_node(
                CFGNode("block", block=init_block, htg_uid=node.uid)
            )
            self.cfg.add_edge(current, init_node)
            current = init_node

        cond_node = self.cfg.add_node(
            CFGNode("branch", cond=node.cond, htg_uid=node.uid)
        )
        self.cfg.add_edge(current, cond_node)
        exit_join = self.cfg.add_node(CFGNode("join", htg_uid=node.uid))
        self.cfg.add_edge(cond_node, exit_join, label="false")

        body_anchor = self.cfg.add_node(CFGNode("join"))
        self.cfg.add_edge(cond_node, body_anchor, label="true")

        self._break_targets.append(exit_join)
        body_tail = self._lower_sequence(node.body, body_anchor)
        self._break_targets.pop()

        if body_tail is not None:
            back_src = body_tail
            if node.update:
                update_block = BasicBlock(
                    ops=node.update, label=f"loop{node.uid}_update"
                )
                update_node = self.cfg.add_node(
                    CFGNode("block", block=update_block, htg_uid=node.uid)
                )
                self.cfg.add_edge(body_tail, update_node)
                back_src = update_node
            self.cfg.add_edge(back_src, cond_node)
        return exit_join


def build_cfg(func: FunctionHTG) -> ControlFlowGraph:
    """Flatten *func* into a control-flow graph."""
    return _CFGBuilder(func).build()
