"""Direct execution of the HTG IR with C integer semantics.

The machine state is a set of scalar bindings and integer arrays.
Functions defined in the design are interpreted; external functions
(e.g. the ILD's ``LengthContribution_k``) are supplied as Python
callables.  A step limit guards against non-terminating descriptions
(the paper's Fig 16 ``while(1)`` form would otherwise never finish).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.frontend.ast_nodes import (
    ArrayRef,
    BinOp,
    Call,
    Expr,
    IntLit,
    Ternary,
    UnaryOp,
    Var,
)
from repro.ir import expr_utils
from repro.ir.htg import (
    BlockNode,
    BreakNode,
    Design,
    FunctionHTG,
    HTGNode,
    IfNode,
    LoopNode,
)
from repro.ir.operations import Operation, OpKind


class InterpreterError(Exception):
    """Raised for semantic faults: undefined variables, bad array
    accesses, unknown functions."""


class ExecutionLimitExceeded(InterpreterError):
    """Raised when the step budget runs out (runaway loop guard)."""


class _BreakSignal(Exception):
    """Internal control transfer for ``break``."""


class _ReturnSignal(Exception):
    """Internal control transfer for ``return``."""

    def __init__(self, value: Optional[int]) -> None:
        super().__init__()
        self.value = value


@dataclass
class MachineState:
    """Observable interpreter state: scalar and array stores.

    ``trace`` records the uid of each executed operation so tests can
    assert on execution order (e.g. that speculated operations run
    unconditionally).
    """

    scalars: Dict[str, int] = field(default_factory=dict)
    arrays: Dict[str, List[int]] = field(default_factory=dict)
    trace: List[int] = field(default_factory=list)

    def snapshot(self) -> Dict[str, object]:
        """Hashable-ish copy of the observable state for comparisons."""
        return {
            "scalars": dict(self.scalars),
            "arrays": {name: list(vals) for name, vals in self.arrays.items()},
        }


ExternalFn = Callable[..., int]


def stateful_external(fn: ExternalFn) -> ExternalFn:
    """Mark an external function as wanting the machine state.

    Decorated externals are called as ``fn(*args, state=state)`` so they
    can read shared arrays (e.g. the ILD's instruction buffer).
    """
    fn.wants_state = True  # type: ignore[attr-defined]
    return fn


class Interpreter:
    """Executes a design's ``main`` (or any function) on a machine state."""

    def __init__(
        self,
        design: Design,
        externals: Optional[Dict[str, ExternalFn]] = None,
        max_steps: int = 1_000_000,
    ) -> None:
        self.design = design
        self.externals = externals or {}
        self.max_steps = max_steps
        self._steps = 0

    # -- public API -----------------------------------------------------

    def run(
        self,
        inputs: Optional[Dict[str, int]] = None,
        array_inputs: Optional[Dict[str, List[int]]] = None,
    ) -> MachineState:
        """Execute ``main`` and return the final machine state.

        *inputs* pre-populates scalar variables; *array_inputs*
        pre-populates arrays (sized to the declared size, zero-padded or
        truncated as needed).
        """
        self._steps = 0
        state = MachineState()
        main = self.design.main
        if inputs:
            state.scalars.update(inputs)
        self._allocate_arrays(main, state, array_inputs)
        try:
            self._exec_nodes(main.body, state, main)
        except _ReturnSignal:
            pass
        return state

    def call_function(
        self,
        name: str,
        args: List[int],
        state: Optional[MachineState] = None,
    ) -> Optional[int]:
        """Call a defined function with scalar arguments; arrays of the
        supplied state are shared (paper Fig 10 style globals)."""
        func = self.design.function(name)
        outer = state if state is not None else MachineState()
        return self._invoke(func, args, outer)

    # -- execution ------------------------------------------------------

    def _allocate_arrays(
        self,
        func: FunctionHTG,
        state: MachineState,
        array_inputs: Optional[Dict[str, List[int]]],
    ) -> None:
        for name, size in func.arrays.items():
            values = [0] * size
            if array_inputs and name in array_inputs:
                provided = array_inputs[name]
                for index in range(min(size, len(provided))):
                    values[index] = provided[index]
            state.arrays[name] = values
        if array_inputs:
            for name, provided in array_inputs.items():
                if name not in state.arrays:
                    state.arrays[name] = list(provided)

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise ExecutionLimitExceeded(
                f"execution exceeded {self.max_steps} steps"
            )

    def _exec_nodes(
        self, nodes: List[HTGNode], state: MachineState, func: FunctionHTG
    ) -> None:
        for node in nodes:
            self._exec_node(node, state, func)

    def _exec_node(
        self, node: HTGNode, state: MachineState, func: FunctionHTG
    ) -> None:
        if isinstance(node, BlockNode):
            for op in node.ops:
                self._exec_op(op, state, func)
        elif isinstance(node, IfNode):
            self._tick()
            if self._eval(node.cond, state):
                self._exec_nodes(node.then_branch, state, func)
            else:
                self._exec_nodes(node.else_branch, state, func)
        elif isinstance(node, LoopNode):
            self._exec_loop(node, state, func)
        elif isinstance(node, BreakNode):
            raise _BreakSignal()
        else:
            raise InterpreterError(f"unknown HTG node {node!r}")

    def _exec_loop(
        self, node: LoopNode, state: MachineState, func: FunctionHTG
    ) -> None:
        for op in node.init:
            self._exec_op(op, state, func)
        while True:
            self._tick()
            if node.cond is not None and not self._eval(node.cond, state):
                return
            try:
                self._exec_nodes(node.body, state, func)
            except _BreakSignal:
                return
            for op in node.update:
                self._exec_op(op, state, func)

    def _exec_op(
        self, op: Operation, state: MachineState, func: FunctionHTG
    ) -> None:
        self._tick()
        state.trace.append(op.uid)
        if op.kind is OpKind.ASSIGN:
            value = self._eval(op.expr, state)
            self._store(op.target, value, state)
        elif op.kind is OpKind.CALL:
            self._eval(op.expr, state)
        elif op.kind is OpKind.RETURN:
            value = self._eval(op.expr, state) if op.expr is not None else None
            raise _ReturnSignal(value)
        else:
            raise InterpreterError(f"unknown op kind {op.kind}")

    def _store(self, target: Optional[Expr], value: int, state: MachineState) -> None:
        if isinstance(target, Var):
            state.scalars[target.name] = value
        elif isinstance(target, ArrayRef):
            index = self._eval(target.index, state)
            array = state.arrays.get(target.name)
            if array is None:
                raise InterpreterError(f"undeclared array {target.name!r}")
            if not 0 <= index < len(array):
                raise InterpreterError(
                    f"array store out of bounds: {target.name}[{index}] "
                    f"(size {len(array)})"
                )
            array[index] = value
        else:
            raise InterpreterError(f"invalid store target {target!r}")

    # -- expression evaluation -------------------------------------------

    def _eval(self, expr: Optional[Expr], state: MachineState) -> int:
        if expr is None:
            raise InterpreterError("evaluating missing expression")
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, Var):
            try:
                return state.scalars[expr.name]
            except KeyError:
                raise InterpreterError(
                    f"read of undefined variable {expr.name!r}"
                ) from None
        if isinstance(expr, ArrayRef):
            index = self._eval(expr.index, state)
            array = state.arrays.get(expr.name)
            if array is None:
                raise InterpreterError(f"undeclared array {expr.name!r}")
            if not 0 <= index < len(array):
                raise InterpreterError(
                    f"array read out of bounds: {expr.name}[{index}] "
                    f"(size {len(array)})"
                )
            return array[index]
        if isinstance(expr, BinOp):
            if expr.op == "&&":
                return int(
                    bool(self._eval(expr.left, state))
                    and bool(self._eval(expr.right, state))
                )
            if expr.op == "||":
                return int(
                    bool(self._eval(expr.left, state))
                    or bool(self._eval(expr.right, state))
                )
            left = self._eval(expr.left, state)
            right = self._eval(expr.right, state)
            return expr_utils.eval_binary(expr.op, left, right)
        if isinstance(expr, UnaryOp):
            return expr_utils.eval_unary(expr.op, self._eval(expr.operand, state))
        if isinstance(expr, Ternary):
            if self._eval(expr.cond, state):
                return self._eval(expr.if_true, state)
            return self._eval(expr.if_false, state)
        if isinstance(expr, Call):
            return self._eval_call(expr, state)
        raise InterpreterError(f"unknown expression {expr!r}")

    def _eval_call(self, call: Call, state: MachineState) -> int:
        args = [self._eval(arg, state) for arg in call.args]
        if call.name in self.design.functions and call.name != Design.MAIN:
            result = self._invoke(self.design.function(call.name), args, state)
            return 0 if result is None else result
        if call.name in self.externals:
            fn = self.externals[call.name]
            if getattr(fn, "wants_state", False):
                return int(fn(*args, state=state))
            return int(fn(*args))
        raise InterpreterError(f"call to unknown function {call.name!r}")

    def _invoke(
        self, func: FunctionHTG, args: List[int], outer: MachineState
    ) -> Optional[int]:
        if len(args) != len(func.params):
            raise InterpreterError(
                f"{func.name} expects {len(func.params)} args, got {len(args)}"
            )
        # Functions get a private scalar frame but share the caller's
        # arrays (paper Fig 10: CalculateLength reads the shared buffer).
        frame = MachineState(
            scalars=dict(zip(func.params, args)),
            arrays=outer.arrays,
            trace=outer.trace,
        )
        for name, size in func.arrays.items():
            if name not in frame.arrays:
                frame.arrays[name] = [0] * size
        try:
            self._exec_nodes(func.body, frame, func)
        except _ReturnSignal as signal:
            return signal.value
        return None


def run_design(
    design: Design,
    inputs: Optional[Dict[str, int]] = None,
    array_inputs: Optional[Dict[str, List[int]]] = None,
    externals: Optional[Dict[str, ExternalFn]] = None,
    max_steps: int = 1_000_000,
) -> MachineState:
    """Convenience wrapper: build an interpreter and run ``main``."""
    interp = Interpreter(design, externals=externals, max_steps=max_steps)
    return interp.run(inputs=inputs, array_inputs=array_inputs)
