"""Behavioral interpreter for the HTG IR.

Executes a :class:`~repro.ir.htg.Design` directly.  The interpreter is
the reproduction's semantics oracle: every transformation is verified
by checking that interpreting the design before and after the pass
produces identical observable state (scalars, arrays, return values)
for the same inputs — including randomized inputs in the
hypothesis-based property tests.
"""

from repro.interp.evaluator import (
    ExecutionLimitExceeded,
    Interpreter,
    InterpreterError,
    MachineState,
    run_design,
    stateful_external,
)

__all__ = [
    "ExecutionLimitExceeded",
    "Interpreter",
    "InterpreterError",
    "MachineState",
    "run_design",
    "stateful_external",
]
