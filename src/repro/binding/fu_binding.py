"""Functional-unit binding.

Assigns every operator occurrence in the schedule to a functional-unit
instance.  Within one state, instances are consumed left to right;
operations in the two branches of a chained conditional restart from
the same instance pool — they are mutually exclusive, so "mutually
exclusive operations can be scheduled in the same clock cycle on the
same resource" (paper Section 2).  Across states every instance is
reusable (that is what a multi-cycle schedule buys).

The result reports instance counts per FU class — the datapath
inventory the area model consumes — and the per-operation assignment,
which determines how much steering logic each shared instance needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.frontend.ast_nodes import (
    ArrayRef,
    BinOp,
    Call,
    Expr,
    IntLit,
    Ternary,
    UnaryOp,
    Var,
)
from repro.ir.operations import Operation, OpKind
from repro.scheduler.resources import ResourceLibrary
from repro.scheduler.schedule import IfItem, Item, OpItem, StateMachine


@dataclass
class FUBinding:
    """FU instance counts and operator-to-instance assignments."""

    # FU class -> number of physical instances
    instance_counts: Dict[str, int] = field(default_factory=dict)
    # op uid -> list of (fu class, instance index) consumed by the op
    op_assignment: Dict[int, List[Tuple[str, int]]] = field(default_factory=dict)

    def instances_of(self, unit_class: str) -> int:
        """Physical instance count bound for *unit_class*."""
        return self.instance_counts.get(unit_class, 0)

    def total_instances(self) -> int:
        """Physical FU instances across every class."""
        return sum(self.instance_counts.values())

    def sharing_factor(self) -> float:
        """Operator occurrences per physical instance (1.0 = no
        sharing)."""
        occurrences = sum(len(v) for v in self.op_assignment.values())
        instances = self.total_instances()
        return occurrences / instances if instances else 0.0


class _Pool:
    """Instance allocation cursor per FU class."""

    def __init__(self) -> None:
        self.next_free: Dict[str, int] = {}

    def copy(self) -> "_Pool":
        pool = _Pool()
        pool.next_free = dict(self.next_free)
        return pool

    def take(self, unit_class: str) -> int:
        index = self.next_free.get(unit_class, 0)
        self.next_free[unit_class] = index + 1
        return index

    def merge_max(self, other: "_Pool") -> None:
        for unit_class, cursor in other.next_free.items():
            self.next_free[unit_class] = max(
                self.next_free.get(unit_class, 0), cursor
            )


def bind_functional_units(
    sm: StateMachine, library: ResourceLibrary
) -> FUBinding:
    """Bind the whole schedule's operators to FU instances."""
    binding = FUBinding()
    for state in sm.reachable_states():
        pool = _Pool()
        _bind_items(state.items, pool, binding, library)
        if state.branch is not None:
            _bind_expr(state.branch.cond, None, pool, binding, library)
        for unit_class, cursor in pool.next_free.items():
            binding.instance_counts[unit_class] = max(
                binding.instance_counts.get(unit_class, 0), cursor
            )
    return binding


def _bind_items(
    items: List[Item], pool: _Pool, binding: FUBinding, library: ResourceLibrary
) -> None:
    for item in items:
        if isinstance(item, OpItem):
            _bind_op(item.op, pool, binding, library)
        else:
            _bind_expr(item.cond, None, pool, binding, library)
            then_pool = pool.copy()
            else_pool = pool.copy()
            _bind_items(item.then_items, then_pool, binding, library)
            _bind_items(item.else_items, else_pool, binding, library)
            # Mutually exclusive branches share instances: the state
            # needs only the max cursor of the two.
            pool.merge_max(then_pool)
            pool.merge_max(else_pool)


def _bind_op(
    op: Operation, pool: _Pool, binding: FUBinding, library: ResourceLibrary
) -> None:
    assignments: List[Tuple[str, int]] = []
    _bind_expr(op.expr, assignments, pool, binding, library)
    if op.kind is OpKind.ASSIGN and isinstance(op.target, ArrayRef):
        assignments.append(("mem", pool.take("mem")))
        _bind_expr(op.target.index, assignments, pool, binding, library)
    if assignments:
        binding.op_assignment[op.uid] = assignments


def _bind_expr(
    expr: Expr,
    assignments,
    pool: _Pool,
    binding: FUBinding,
    library: ResourceLibrary,
) -> None:
    sink = assignments if assignments is not None else []

    def visit(node) -> None:
        if node is None or isinstance(node, (IntLit, Var)):
            return
        if isinstance(node, ArrayRef):
            sink.append(("mem", pool.take("mem")))
            visit(node.index)
        elif isinstance(node, BinOp):
            unit_class = library.unit_class(node.op)
            sink.append((unit_class, pool.take(unit_class)))
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnaryOp):
            unit_class = library.unit_class(node.op)
            sink.append((unit_class, pool.take(unit_class)))
            visit(node.operand)
        elif isinstance(node, Call):
            unit_class = f"ext:{node.name}"
            sink.append((unit_class, pool.take(unit_class)))
            for arg in node.args:
                visit(arg)
        elif isinstance(node, Ternary):
            sink.append(("mux", pool.take("mux")))
            visit(node.cond)
            visit(node.if_true)
            visit(node.if_false)
        else:
            raise TypeError(f"unknown expression {node!r}")

    visit(expr)
