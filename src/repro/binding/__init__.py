"""Binding: mapping scheduled values and operations onto hardware.

* :mod:`repro.binding.lifetimes` — "After scheduling, during register
  binding, a variable life-time analysis pass determines which
  variables are actually mapped to registers" (paper Section 3.1.2):
  a variable needs a register exactly when its value crosses a state
  (cycle) boundary; wire-variables never do, by construction.
* :mod:`repro.binding.register_binding` — shares registers between
  variables with disjoint lifetimes (greedy interval/conflict
  coloring, the left-edge strategy generalized to FSM state graphs).
* :mod:`repro.binding.fu_binding` — assigns operators to functional
  unit instances; mutually exclusive operations (opposite branches of
  one conditional) share instances, the Section-2 cost-model point.
"""

from repro.binding.lifetimes import LifetimeAnalysis, StateLiveness
from repro.binding.register_binding import RegisterBinding, bind_registers
from repro.binding.fu_binding import FUBinding, bind_functional_units

__all__ = [
    "FUBinding",
    "LifetimeAnalysis",
    "RegisterBinding",
    "StateLiveness",
    "bind_functional_units",
    "bind_registers",
]
