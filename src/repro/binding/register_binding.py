"""Register binding: sharing physical registers between variables.

Two variables can share a register when their lifetimes never overlap
— here, when no FSM state has both live at entry.  The classic
left-edge algorithm solves this optimally for linear schedules; over a
state *graph* the same greedy idea runs on the conflict relation:
process variables in order of first-live state and drop each into the
first register whose current occupants never conflict with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.binding.lifetimes import LifetimeAnalysis
from repro.scheduler.schedule import StateMachine


@dataclass
class RegisterBinding:
    """Result: variable -> physical register index, plus the reverse
    grouping."""

    assignment: Dict[str, int] = field(default_factory=dict)
    groups: List[List[str]] = field(default_factory=list)

    @property
    def register_count(self) -> int:
        """Number of physical registers allocated."""
        return len(self.groups)

    def register_of(self, variable: str) -> int:
        """Physical register index assigned to *variable*."""
        return self.assignment[variable]

    def shares(self, a: str, b: str) -> bool:
        """True when the two variables were bound to one register."""
        return (
            a in self.assignment
            and b in self.assignment
            and self.assignment[a] == self.assignment[b]
        )


def bind_registers(
    sm: StateMachine,
    boundary_live: Optional[Set[str]] = None,
    lifetimes: Optional[LifetimeAnalysis] = None,
) -> RegisterBinding:
    """Bind every register-resident variable to a physical register.

    Variables that never cross a cycle boundary (including every
    wire-variable) receive no register at all — they exist only as
    wires inside a cycle.
    """
    analysis = lifetimes or LifetimeAnalysis(sm, boundary_live=boundary_live)
    variables = sorted(analysis.registers())

    live_states: Dict[str, Set[int]] = {
        var: set(analysis.lifetime_states(var)) for var in variables
    }
    # Left-edge ordering: by first live state, then name for determinism.
    variables.sort(key=lambda v: (min(live_states[v], default=0), v))

    binding = RegisterBinding()
    occupancy: List[Set[int]] = []  # per register: union of live states
    for var in variables:
        states = live_states[var]
        placed = False
        for reg_index, occupied in enumerate(occupancy):
            if not (occupied & states):
                occupied |= states
                binding.groups[reg_index].append(var)
                binding.assignment[var] = reg_index
                placed = True
                break
        if not placed:
            occupancy.append(set(states))
            binding.groups.append([var])
            binding.assignment[var] = len(occupancy) - 1
    return binding
