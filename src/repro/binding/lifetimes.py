"""Variable lifetime analysis over the scheduled state machine.

The register criterion (paper Section 3.1.2): "registers can only be
read in the next cycle after being written"; conversely only values
*read in a later cycle than they are written* need a register at all.
The analysis computes, per state, which variables are live at state
entry (their value was produced in an earlier cycle); the union over
states is the register set.  Wire-variables must never appear in any
live-in set — that is asserted, because it is exactly the invariant the
chaining transformation establishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir import expr_utils
from repro.scheduler.schedule import IfItem, Item, OpItem, State, StateMachine


@dataclass
class StateLiveness:
    """Per-state use/def and fixpoint live sets."""

    use: Set[str] = field(default_factory=set)
    must_def: Set[str] = field(default_factory=set)
    live_in: Set[str] = field(default_factory=set)
    live_out: Set[str] = field(default_factory=set)


class LifetimeAnalysis:
    """Backward liveness over the FSM state graph.

    *boundary_live* lists scalars observable after the machine halts
    (design outputs held in scalar registers).
    """

    def __init__(
        self, sm: StateMachine, boundary_live: Optional[Set[str]] = None
    ) -> None:
        self.sm = sm
        self.boundary_live = set(boundary_live or ())
        self.info: Dict[int, StateLiveness] = {}
        self._run()

    # -- public results -----------------------------------------------------

    def registers(self) -> Set[str]:
        """Variables whose value crosses a cycle boundary."""
        regs: Set[str] = set()
        for state in self.sm.reachable_states():
            regs |= self.info[state.state_id].live_in
        wires = self.sm.func.wire_variables
        overlap = regs & wires
        if overlap:
            raise AssertionError(
                f"wire-variables crossing a cycle boundary: {sorted(overlap)} "
                "— the chaining transformation's invariant is violated"
            )
        return regs

    def lifetime_states(self, variable: str) -> List[int]:
        """States at whose entry *variable* is live (its register must
        hold the value during these cycles)."""
        return [
            state.state_id
            for state in self.sm.reachable_states()
            if variable in self.info[state.state_id].live_in
        ]

    # -- analysis -------------------------------------------------------------

    def _run(self) -> None:
        states = self.sm.reachable_states()
        for state in states:
            use, must_def = _state_use_def(state.items)
            if state.branch is not None:
                use |= expr_utils.variables_read(state.branch.cond) - must_def
            self.info[state.state_id] = StateLiveness(use=use, must_def=must_def)

        changed = True
        while changed:
            changed = False
            for state in states:
                info = self.info[state.state_id]
                out: Set[str] = set()
                successors = []
                if state.branch is not None:
                    successors.extend(
                        [state.branch.true_next, state.branch.false_next]
                    )
                elif state.default_next is not None:
                    successors.append(state.default_next)
                if not successors or None in successors:
                    out |= self.boundary_live
                for succ in successors:
                    if succ is not None and succ in self.info:
                        out |= self.info[succ].live_in
                live_in = info.use | (out - info.must_def)
                if out != info.live_out or live_in != info.live_in:
                    info.live_out = set(out)
                    info.live_in = set(live_in)
                    changed = True

def _state_use_def(items: List[Item]) -> Tuple[Set[str], Set[str]]:
    """Upward-exposed reads and must-writes of an item tree.

    ``use``: variables read on some path before any write on that path.
    ``must_def``: variables written on *every* path (safe liveness
    kill-set).
    """
    use: Set[str] = set()
    must_def: Set[str] = set()
    for item in items:
        if isinstance(item, OpItem):
            use |= item.op.reads() - must_def
            must_def |= item.op.writes()
        else:
            use |= expr_utils.variables_read(item.cond) - must_def
            then_use, then_def = _state_use_def(item.then_items)
            else_use, else_def = _state_use_def(item.else_items)
            use |= (then_use | else_use) - must_def
            must_def |= then_def & else_def
    return use, must_def
