"""repro — a reproduction of *Coordinated Transformations for High-Level
Synthesis of High Performance Microprocessor Blocks* (Gupta, Kam,
Kishinevsky, Rotem, Savoiu, Dutt, Gupta, Nicolau — DAC 2002): the Spark
HLS methodology for single-cycle microprocessor functional blocks.

Quick start::

    from repro import SparkSession, SynthesisScript
    from repro.ild import build_ild_source, ild_externals, ild_library

    session = SparkSession(
        build_ild_source(n=8),
        script=SynthesisScript.microprocessor_block(
            pure_functions=set(ild_externals(n=8))),
        library=ild_library(),
        externals=ild_externals(n=8),
    )
    result = session.run()
    assert result.state_machine.is_single_cycle()

Package map (see DESIGN.md for the full inventory):

==================  =====================================================
``repro.frontend``  behavioral C-subset lexer/parser/AST
``repro.ir``        operations, basic blocks, HTG, CFG, data-flow
``repro.interp``    behavioral interpreter (semantics oracle)
``repro.transforms``the coordinated transformation suite (Section 3)
``repro.scheduler`` chaining-aware scheduling into an FSMD (Section 3.1)
``repro.binding``   lifetime analysis, register/FU binding
``repro.backend``   RTL simulation, VHDL/Verilog emission
``repro.estimation``area / timing models
``repro.ild``       the instruction length decoder case study (5-6),
                    including the streaming (chunked) decoder
``repro.blocks``    more microprocessor functional blocks (Section 7)
``repro.flow``      the staged pipeline: named stages, per-stage
                    timing, content-addressed stage artifacts
``repro.spark``     the top-level scripted flow (Section 4)
``repro.cli``       ``python -m repro`` command-line tool
==================  =====================================================
"""

from repro.backend.interface import DesignInterface
from repro.flow import (
    FlowRequest,
    StageRecord,
    SYNTHESIS_STAGES,
    run_flow,
)
from repro.ir.builder import design_from_source
from repro.scheduler.resources import ResourceAllocation, ResourceLibrary
from repro.spark import (
    JobEnvironment,
    SparkSession,
    SynthesisJob,
    SynthesisOutcome,
    SynthesisResult,
    execute_job,
    synthesize,
)
from repro.transforms.base import SynthesisScript

__version__ = "1.1.0"

__all__ = [
    "DesignInterface",
    "FlowRequest",
    "JobEnvironment",
    "ResourceAllocation",
    "ResourceLibrary",
    "SYNTHESIS_STAGES",
    "SparkSession",
    "StageRecord",
    "SynthesisJob",
    "SynthesisOutcome",
    "SynthesisResult",
    "SynthesisScript",
    "design_from_source",
    "execute_job",
    "run_flow",
    "synthesize",
    "__version__",
]
