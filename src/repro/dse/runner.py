"""The exploration engine: cache-aware parallel job fan-out.

The engine is intentionally simple and deterministic:

1. every job is keyed by content hash and looked up in the on-disk
   cache (when caching is enabled);
2. the misses are executed — across a ``multiprocessing`` pool when
   ``workers > 1`` and more than one job is pending, serially
   otherwise (no pool spin-up cost on all-hit re-runs);
3. fresh outcomes are written back to the cache;
4. results come back in job order regardless of completion order.

``execute_job`` is a pure module-level function over picklable
dataclasses, which is exactly what ``Pool.map`` needs; environment
factories (external callables, libraries) are resolved inside each
worker, never shipped across the process boundary.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.dse.cache import ResultCache, default_cache_dir, job_key
from repro.spark import SynthesisJob, SynthesisOutcome, execute_job


@dataclass
class ExplorationResult:
    """Everything one sweep produced, in job order."""

    outcomes: List[SynthesisOutcome] = field(default_factory=list)
    cache_hits: int = 0
    executed: int = 0
    elapsed: float = 0.0
    workers: int = 1

    @property
    def feasible(self) -> List[SynthesisOutcome]:
        return [outcome for outcome in self.outcomes if outcome.ok]

    def ranked(self) -> List[SynthesisOutcome]:
        """Outcomes by ascending score (best design point first);
        stable and deterministic for equal metrics via the label."""
        return sorted(self.outcomes, key=lambda outcome: outcome.score())

    def best(self) -> Optional[SynthesisOutcome]:
        feasible = self.feasible
        if not feasible:
            return None
        return min(feasible, key=lambda outcome: outcome.score())


class ExplorationEngine:
    """Runs batches of synthesis jobs with memoization.

    Parameters
    ----------
    cache_dir:
        cache directory; ``None`` selects the default location and
        ``False``-y empty string disables caching entirely.
    workers:
        process-pool width for cache misses; ``1`` runs in-process.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path, None] = None,
        workers: int = 1,
        use_cache: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache: Optional[ResultCache] = None
        if use_cache:
            self.cache = ResultCache(
                cache_dir if cache_dir is not None else default_cache_dir()
            )

    def explore(self, jobs: Sequence[SynthesisJob]) -> ExplorationResult:
        """Execute (or recall) every job; outcomes match job order."""
        started = time.perf_counter()
        result = ExplorationResult(workers=self.workers)
        outcomes: List[Optional[SynthesisOutcome]] = [None] * len(jobs)
        pending: List[Tuple[int, str, SynthesisJob]] = []

        for index, job in enumerate(jobs):
            key = job_key(job) if self.cache is not None else ""
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                cached.label = job.label  # labels are presentation-only
                outcomes[index] = cached
                result.cache_hits += 1
            else:
                pending.append((index, key, job))

        if pending:
            fresh = self._execute(
                [job for _, _, job in pending]
            )
            for (index, key, _job), outcome in zip(pending, fresh):
                outcomes[index] = outcome
                if self.cache is not None:
                    self.cache.put(key, outcome)
            result.executed = len(pending)

        result.outcomes = [
            outcome for outcome in outcomes if outcome is not None
        ]
        result.elapsed = time.perf_counter() - started
        return result

    def _execute(
        self, jobs: List[SynthesisJob]
    ) -> List[SynthesisOutcome]:
        if self.workers > 1 and len(jobs) > 1:
            pool_size = min(self.workers, len(jobs))
            with multiprocessing.Pool(processes=pool_size) as pool:
                return pool.map(execute_job, jobs)
        return [execute_job(job) for job in jobs]


def explore(
    jobs: Sequence[SynthesisJob],
    workers: int = 1,
    cache_dir: Union[str, Path, None] = None,
    use_cache: bool = True,
) -> ExplorationResult:
    """One-call convenience sweep."""
    engine = ExplorationEngine(
        cache_dir=cache_dir, workers=workers, use_cache=use_cache
    )
    return engine.explore(jobs)
