"""The exploration engine: adaptive, streaming, cache-aware fan-out.

The engine evolved from a batch ``Pool.map`` into an adaptive loop:

1. every job is keyed by content hash and looked up in the on-disk
   cache (when caching is enabled); hits stream straight to the
   caller's ``on_outcome`` callback and seed the Pareto frontier and
   the dominance pruner;
2. misses execute as a *stream* through a pluggable
   :class:`~repro.dse.exec.Executor` — in-process
   (``executor="serial"``), a dead-worker-tolerant process pool
   (``"pool"``), or a filesystem job broker served by ``repro
   dse-worker`` processes on any machine sharing the directory
   (``"broker"``) — so each completion is observed the moment it
   lands rather than at an end-of-sweep barrier;
3. each completion updates the latency/area frontier, may satisfy the
   sweep goal (``target_latency`` / ``max_area``) and stop the sweep
   early (withdrawing jobs the executor has not started), and may
   prove pending corners infeasible by dominance so they are pruned
   without ever running;
4. cacheable fresh outcomes (successes and deterministic
   infeasibility — never environment trouble or expired wall-clock
   budgets) are written back;
5. results come back in job order regardless of completion order.

Below the whole-job outcome cache sits the *stage* cache: dispatched
jobs are stamped with the cache directory, so each worker's staged
flow (:mod:`repro.flow`) recalls content-addressed frontend /
transform / schedule snapshots — a sweep that varies only
schedule-stage knobs parses and transforms once per distinct
transform prefix, even across pool workers and broker machines
sharing the path.  :meth:`ExplorationResult.stage_totals` reports the
per-stage wall clock and hit/miss split of a sweep's fresh work.

``execute_job`` is a pure module-level function over picklable
dataclasses; environment factories (external callables, libraries)
are resolved inside each worker, never shipped across the process
boundary.

Fault tolerance is the executors' contract (:mod:`repro.dse.exec`):
a lost worker process or machine settles its job as an
``error_kind="environment"`` outcome instead of hanging the sweep,
and a per-job wall-clock budget (``job_timeout``) settles runaway
corners as ``error_kind="timeout"`` — neither is ever memoized or
used as pruning evidence.
"""

from __future__ import annotations

import copy
import dataclasses
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.dse.broker import BROKER_DIR_NAME, DEFAULT_LEASE_TTL
from repro.dse.cache import (
    ResultCache,
    default_cache_dir,
    job_key,
    names_bare_cwd,
)
from repro.dse.exec import EXECUTOR_KINDS, Executor, make_executor
from repro.dse.storage import BACKEND_KINDS
from repro.dse.pareto import InfeasiblePruner, ParetoFront, SweepGoal
from repro.dse.search.base import SearchReport, SearchStrategy
from repro.dse.service import maybe_auto_gc
from repro.flow.keys import job_stage_key
from repro.spark import (
    ERROR_KIND_UNSCHEDULABLE,
    ERROR_KIND_VERIFIER,
    SynthesisJob,
    SynthesisOutcome,
)
from repro.transforms.base import SYNTHESIS_STAGES

#: Callback invoked once per settled outcome (hit, fresh run or prune),
#: in completion order.
OutcomeCallback = Callable[[SynthesisOutcome], None]

#: A search round whose proposals all dedupe against already-settled
#: corners makes no progress; after this many in a row the engine ends
#: the search rather than looping a stuck strategy forever.
DRY_ROUND_LIMIT = 8


@dataclass
class ExplorationResult:
    """Everything one sweep produced, in job order.

    ``outcomes`` holds every job that *settled* — executed, recalled
    from cache, replayed as a within-sweep duplicate (provenance
    ``"dedup"``), or pruned as provably infeasible.  Jobs abandoned by
    an early exit (never dispatched, or withdrawn from the broker
    queue before any worker claimed them) are only counted
    (``skipped``), never fabricated.

    ``search`` is populated by :meth:`ExplorationEngine.search` with
    the strategy's :class:`~repro.dse.search.base.SearchReport`
    (per-round trace and proposed/deduped/pruned/withdrawn/evaluated
    counters); plain grid sweeps leave it ``None``.
    """

    outcomes: List[SynthesisOutcome] = field(default_factory=list)
    cache_hits: int = 0
    executed: int = 0
    pruned: int = 0
    skipped: int = 0
    deduped: int = 0
    goal_met: bool = False
    elapsed: float = 0.0
    workers: int = 1
    executor: str = "serial"
    front: ParetoFront = field(default_factory=ParetoFront)
    search: Optional[SearchReport] = None

    @property
    def feasible(self) -> List[SynthesisOutcome]:
        return [outcome for outcome in self.outcomes if outcome.ok]

    @property
    def verifier_failures(self) -> List[SynthesisOutcome]:
        """Outcomes where the static verifier caught an invariant
        violation (``--verify-each`` runs only) — tool bugs, reported
        separately from design infeasibility."""
        return [
            outcome
            for outcome in self.outcomes
            if outcome.error_kind == ERROR_KIND_VERIFIER
        ]

    @property
    def frontier(self) -> List[SynthesisOutcome]:
        """The latency/area non-dominated outcomes, fastest first."""
        return self.front.points()

    def ranked(self) -> List[SynthesisOutcome]:
        """Outcomes by ascending score (best design point first);
        stable and deterministic for equal metrics via the label."""
        return sorted(self.outcomes, key=lambda outcome: outcome.score())

    def stage_totals(self) -> "dict[str, dict[str, float]]":
        """Where this sweep's fresh executions spent their time, per
        stage: ``{stage: {"runs": n, "hits": n, "elapsed": seconds}}``
        in stage order.

        Aggregates only outcomes with provenance ``"run"`` — recalled
        outcomes carry their *original* run's records, which describe
        a previous sweep's work, and pruned outcomes never executed.
        A warm sweep over schedule-only axes therefore shows e.g.
        ``transform: 0 runs / N hits`` — the incremental-sweep win,
        measured.
        """
        totals: dict = {}
        for outcome in self.outcomes:
            if outcome.provenance != "run":
                continue
            for entry in outcome.stages:
                stage = str(entry.get("stage", ""))
                bucket = totals.setdefault(
                    stage, {"runs": 0, "hits": 0, "elapsed": 0.0}
                )
                bucket["hits" if entry.get("cached") else "runs"] += 1
                bucket["elapsed"] += float(entry.get("elapsed", 0.0))
        ordered = {
            stage: totals[stage]
            for stage in SYNTHESIS_STAGES
            if stage in totals
        }
        for stage in totals:  # extras, e.g. "measure", keep their place
            if stage not in ordered:
                ordered[stage] = totals[stage]
        return ordered

    def best(self) -> Optional[SynthesisOutcome]:
        feasible = self.feasible
        if not feasible:
            return None
        return min(feasible, key=lambda outcome: outcome.score())


def _pruned_outcome(job: SynthesisJob, witness: str) -> SynthesisOutcome:
    """The outcome recorded for a corner proven infeasible by
    dominance: infeasible like its witness, but tagged so it is never
    cached and its origin is visible in reports."""
    return SynthesisOutcome(
        label=job.label,
        ok=False,
        error=f"pruned: dominated by infeasible point `{witness}`",
        error_kind=ERROR_KIND_UNSCHEDULABLE,
        provenance="pruned",
        clock_period=job.script.clock_period,
    )


def _replica_outcome(
    job: SynthesisJob, original: SynthesisOutcome
) -> SynthesisOutcome:
    """The outcome recorded for a corner whose cache key already
    settled earlier in the same sweep: the original's metrics under
    the duplicate's label, tagged ``"dedup"`` so reports and
    :meth:`ExplorationResult.stage_totals` never double-count it."""
    replica = copy.copy(original)
    replica.label = job.label
    replica.provenance = "dedup"
    return replica


def _trace_entry(proposal, action: str) -> Dict[str, object]:
    """One ``search_trace`` row: how a proposal fared, and what the
    strategy decided about it."""
    return {
        "round": proposal.round,
        "label": proposal.point.label,
        "parent": proposal.parent,
        "action": action,
        "decision": proposal.decision,
    }


class _MissStream:
    """Incremental cache scan plus prefix-grouped miss batching.

    The engine used to prescan the *entire* job list for cache hits
    before dispatching the first miss — on a large, mostly-cold sweep
    every worker sat idle while thousands of corners were hashed and
    probed.  This object interleaves the scan with dispatch: the
    engine asks for the next batch of misses and the stream hashes
    only as many jobs as needed to produce one; hit/duplicate
    settlement lives in the engine's *classify* callback, which
    returns ``(consumed, goal_met)`` — consumed jobs (cache hits,
    within-sweep duplicates) never surface as misses.

    Misses buffer per transform-prefix stage key
    (:func:`~repro.flow.keys.job_stage_key`), so a flushed batch
    shares one stage snapshot end to end; with ``batch_size == 1``
    grouping is bypassed and every miss flushes the moment it is
    found.
    """

    def __init__(
        self,
        jobs: Sequence[SynthesisJob],
        batch_size: int,
        classify: Callable[[int, str, SynthesisJob], Tuple[bool, bool]],
    ) -> None:
        self._jobs = jobs
        self._batch_size = batch_size
        self._classify = classify
        self._cursor = 0
        #: Misses awaiting batch-mates, per transform-prefix group, in
        #: first-seen group order (so partial flushes favor the oldest
        #: buffered corner and job order is respected within a group).
        self._buffers: "OrderedDict[str, List[Tuple[int, str, SynthesisJob]]]" = (
            OrderedDict()
        )
        self._buffered = 0
        #: Set when a cache hit satisfied the sweep goal mid-scan; the
        #: stream then yields nothing further.
        self.goal_met = False

    @property
    def buffered(self) -> int:
        """Misses found but not yet flushed as a batch."""
        return self._buffered

    def unscanned(self) -> int:
        """Jobs not yet hashed or probed."""
        return len(self._jobs) - self._cursor

    def upper_bound(self) -> int:
        """Most misses that can still surface (every unscanned job
        may miss); sizes the executor at first dispatch, before the
        real miss count is known."""
        return self._buffered + self.unscanned()

    def next_batch(
        self, eager: bool
    ) -> Optional[List[Tuple[int, str, SynthesisJob]]]:
        """Scan forward until a batch of misses is ready; ``None``
        when the stream is done (every job scanned and flushed, or a
        hit met the goal).

        *eager* means the executor is idle: rather than scanning
        arbitrarily far for batch-mates while hardware sits unused,
        flush a partial batch once anything is buffered and one
        batch's worth of jobs has been examined this call.
        """
        examined = 0
        while not self.goal_met and self._cursor < len(self._jobs):
            batch = self._pop_full()
            if batch is not None:
                return batch
            if eager and self._buffered and examined >= self._batch_size:
                break
            self._classify_next()
            examined += 1
        if self.goal_met:
            return None
        batch = self._pop_full()
        if batch is not None:
            return batch
        if (eager or self._cursor >= len(self._jobs)) and self._buffers:
            return self._pop_partial()
        return None

    def _classify_next(self) -> None:
        index = self._cursor
        job = self._jobs[index]
        self._cursor += 1
        # The key is computed even with caching disabled: it is also
        # the within-sweep dedupe identity and the executor token.
        key = job_key(job)
        consumed, met = self._classify(index, key, job)
        if consumed:
            if met:
                self.goal_met = True
            return
        group = (
            "" if self._batch_size == 1 else job_stage_key(job, "transform")
        )
        self._buffers.setdefault(group, []).append((index, key, job))
        self._buffered += 1

    def _pop_full(self) -> Optional[List[Tuple[int, str, SynthesisJob]]]:
        for group, entries in self._buffers.items():
            if len(entries) >= self._batch_size:
                del self._buffers[group]
                self._buffered -= len(entries)
                return entries
        return None

    def _pop_partial(self) -> List[Tuple[int, str, SynthesisJob]]:
        group = next(iter(self._buffers))
        entries = self._buffers.pop(group)
        self._buffered -= len(entries)
        return entries


class ExplorationEngine:
    """Runs batches of synthesis jobs with memoization, streaming
    results, Pareto tracking, dominance pruning and early exit.

    Parameters
    ----------
    cache_dir:
        cache directory; ``None`` selects the default location and an
        empty string disables caching entirely.  Accepts a backend
        spec string (``sqlite:<dir>``) as well as a plain path.
    cache_backend:
        storage backend for the outcome/stage cache: ``"fs"`` (the
        default 16-way-sharded filesystem layout), ``"flat"`` (the
        legacy single-lock flat directory), or ``"sqlite"`` (one
        WAL-mode database file — machine-local, so broker fleets
        need no shared cache mount).  ``None`` defers to a spec
        prefix in *cache_dir* (a bare path means ``"fs"``).
    workers:
        process-pool width for cache misses; ``1`` runs in-process.
    executor:
        execution backend for cache misses: ``"auto"`` (serial for one
        worker, pool otherwise), ``"serial"``, ``"pool"``, ``"broker"``
        — or a pre-built :class:`~repro.dse.exec.Executor` instance.
    job_timeout:
        per-job wall-clock budget in seconds applied to every
        dispatched job that does not carry its own; ``None`` (default)
        leaves jobs unbounded.
    broker_dir:
        the broker directory for ``executor="broker"``; defaults to
        ``<cache dir>/broker`` so engine and workers rendezvous on the
        shared cache filesystem.
    lease_ttl:
        broker heartbeat expiry: a claimed job whose worker stops
        beating for this long is requeued.
    stage_cache:
        memoize *stage* artifacts (parsed/transformed designs,
        schedules) beside the outcome entries, so corners that differ
        only in late-stage knobs skip the early stages — on by
        default; requires the outcome cache (disabled automatically
        under ``use_cache=False``).  Dispatched jobs are stamped with
        the cache directory, so pool workers and broker machines
        sharing the path reuse each other's artifacts.
    batch_size:
        misses sharing a transform-prefix stage key are dispatched in
        groups of up to this many jobs; a batch executes in one
        process, which loads the shared stage snapshot *once* and
        reuses the scheduler's dependence analysis across members
        that differ only in resource limits or clock.  ``1`` (the
        default) disables batching.  Purely a dispatch optimization:
        outcomes, caching and ranking are identical either way.
    verify:
        run the static verifier (:mod:`repro.analysis.verifier`) on
        every miss-path execution (``--verify-each``): dispatched jobs
        are stamped ``verify=True``, violations settle as
        ``error_kind="verifier"`` outcomes (never cached as valid,
        never pruning evidence), and cache hits require a *verified*
        entry — unverified entries read as misses and are re-run
        (the upgraded entry then serves both kinds of request).
    lint_rtl:
        additionally run the static RTL linter
        (:mod:`repro.analysis.rtl`) over both emitted backends at the
        emit stage boundary of every miss-path execution: dispatched
        jobs are stamped ``lint_rtl=True``, and violations share the
        ``error_kind="verifier"`` contract (never cached as valid,
        never pruning evidence).
    """

    def __init__(
        self,
        cache_dir: Union[str, Path, None] = None,
        workers: int = 1,
        use_cache: bool = True,
        cache_backend: Optional[str] = None,
        executor: Union[str, Executor] = "auto",
        job_timeout: Optional[float] = None,
        broker_dir: Union[str, Path, None] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        stage_cache: bool = True,
        batch_size: int = 1,
        verify: bool = False,
        lint_rtl: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if isinstance(executor, str) and executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of "
                f"{', '.join(EXECUTOR_KINDS)}"
            )
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError(
                f"job_timeout must be positive, got {job_timeout}"
            )
        if cache_backend is not None and cache_backend not in BACKEND_KINDS:
            raise ValueError(
                f"unknown cache backend {cache_backend!r}; expected "
                f"one of {', '.join(BACKEND_KINDS)}"
            )
        self.workers = workers
        self.executor = executor
        self.batch_size = batch_size
        self.job_timeout = job_timeout
        self.verify = verify
        self.lint_rtl = lint_rtl
        self.broker_dir = broker_dir
        self.lease_ttl = lease_ttl
        self.cache: Optional[ResultCache] = None
        # An empty cache_dir means "no cache", exactly like
        # use_cache=False.  Path("") silently becomes the *current
        # directory*, so every spelling that normalizes to the cwd
        # root ("", ".", "./", Path("")) is treated as disabled rather
        # than spraying <sha>.json entries next to the user's files.
        # A deliberate cwd-relative cache needs an explicit "./name".
        if use_cache and (cache_dir is None or not names_bare_cwd(cache_dir)):
            self.cache = ResultCache(
                cache_dir if cache_dir is not None else default_cache_dir(),
                backend=cache_backend,
            )
        #: Stage artifacts live *in* the outcome cache's storage
        #: backend so one shard-lock/gc service governs both; no
        #: cache, no stage cache.  ``stage_spec`` is the backend spec
        #: string stamped onto dispatched jobs (it rides the broker
        #: wire format in ``stage_cache_dir``); ``stage_dir`` remains
        #: the physical root path.
        self.stage_spec: Optional[str] = (
            self.cache.spec if stage_cache and self.cache is not None else None
        )
        self.stage_dir: Optional[Path] = (
            self.cache.root if stage_cache and self.cache is not None else None
        )

    def explore(
        self,
        jobs: Sequence[SynthesisJob],
        on_outcome: Optional[OutcomeCallback] = None,
        target_latency: Optional[float] = None,
        max_area: Optional[float] = None,
        prune: bool = True,
    ) -> ExplorationResult:
        """Execute (or recall, or prune) every job.

        ``on_outcome`` fires once per settled outcome in completion
        order; ``result.outcomes`` stays in job order.  With a
        ``target_latency`` and/or ``max_area`` goal the sweep stops as
        soon as a feasible outcome satisfies every set constraint;
        with ``prune`` (the default) pending corners provably at least
        as constrained as an observed deterministically-infeasible
        corner are marked infeasible without executing.

        Jobs sharing a cache key within one sweep dispatch **once**:
        later duplicates settle as ``"dedup"`` replicas of the first
        occurrence's outcome (counted in ``result.deduped``), or wait
        for it if it is still in flight.
        """
        goal = SweepGoal(target_latency=target_latency, max_area=max_area)
        pruner = InfeasiblePruner() if prune else None
        outcomes, result = self._explore_indexed(
            jobs, on_outcome, goal, pruner
        )
        result.outcomes = [
            outcome for outcome in outcomes if outcome is not None
        ]
        return result

    def _explore_indexed(
        self,
        jobs: Sequence[SynthesisJob],
        on_outcome: Optional[OutcomeCallback],
        goal: SweepGoal,
        pruner: Optional[InfeasiblePruner],
    ) -> Tuple[List[Optional[SynthesisOutcome]], ExplorationResult]:
        """The sweep core: returns per-job outcomes *positionally*
        (``None`` where a job was skipped), so :meth:`search` can map
        settlements back to the proposals that produced them.  The
        returned result's ``outcomes`` list is left empty; callers
        decide how to flatten."""
        started = time.perf_counter()
        result = ExplorationResult(workers=self.workers)
        # Report the configured backend even when every job is served
        # from cache and no executor ever opens ("auto" resolves only
        # once the miss count is known; _run_pending refines it).
        if isinstance(self.executor, Executor):
            result.executor = self.executor.kind
        elif self.executor != "auto":
            result.executor = self.executor
        outcomes: List[Optional[SynthesisOutcome]] = [None] * len(jobs)
        #: Within-sweep dedupe: first job index per cache key, settled
        #: outcomes by key, and duplicate indices parked behind a
        #: still-in-flight first occurrence.
        first_by_key: Dict[str, int] = {}
        settled_by_key: Dict[str, SynthesisOutcome] = {}
        waiters: Dict[str, List[int]] = {}

        def settle(index: int, outcome: SynthesisOutcome) -> bool:
            """Record one settled outcome; True when it meets the goal."""
            outcomes[index] = outcome
            result.front.update(outcome)
            if pruner is not None:
                pruner.observe(jobs[index], outcome)
            if on_outcome is not None:
                on_outcome(outcome)
            return goal.satisfied_by(outcome)

        def settle_replica(index: int, original: SynthesisOutcome) -> bool:
            result.deduped += 1
            return settle(index, _replica_outcome(jobs[index], original))

        def settle_keyed(
            index: int, key: str, outcome: SynthesisOutcome
        ) -> bool:
            """Settle a first occurrence and replay any parked
            duplicates; True when anything met the goal."""
            met = settle(index, outcome)
            settled_by_key[key] = outcome
            for waiter in waiters.pop(key, ()):
                if settle_replica(waiter, outcome):
                    met = True
            return met

        def classify(
            index: int, key: str, job: SynthesisJob
        ) -> Tuple[bool, bool]:
            """Hit/duplicate triage for one scanned job: ``(consumed,
            goal_met)`` — consumed jobs never surface as misses."""
            if key in first_by_key:
                original = settled_by_key.get(key)
                if original is not None:
                    return True, settle_replica(index, original)
                waiters.setdefault(key, []).append(index)
                return True, False
            first_by_key[key] = index
            cached = (
                self.cache.get(
                    key, require_verified=self.verify or job.verify
                )
                if self.cache is not None
                else None
            )
            if cached is not None:
                cached.label = job.label  # labels are presentation-only
                result.cache_hits += 1
                return True, settle_keyed(index, key, cached)
            return False, False

        # The scan is interleaved with dispatch: the stream hashes and
        # probes just enough jobs to surface the next miss batch, so
        # the first miss is executing while the rest of a large job
        # list is still being scanned (hits settle along the way).
        stream = _MissStream(jobs, self.batch_size, classify)
        first = stream.next_batch(eager=True)
        if first is None:
            # No miss ever surfaced: all hits, and possibly a goal met
            # mid-scan — the unscanned tail was never hashed.
            goal_met = stream.goal_met
            result.skipped += stream.buffered + stream.unscanned()
        else:
            goal_met = self._run_pending(
                first, stream, result, pruner, settle_keyed
            )
        # Duplicates parked behind an original that never settled
        # (withdrawn on early exit) are skipped, like the original.
        result.skipped += sum(len(parked) for parked in waiters.values())

        result.goal_met = goal_met
        result.elapsed = time.perf_counter() - started
        if self.cache is not None:
            maybe_auto_gc(self.cache.backend)
        return outcomes, result

    def search(
        self,
        strategy: SearchStrategy,
        job_factory: Callable[[object], SynthesisJob],
        budget: int,
        on_outcome: Optional[OutcomeCallback] = None,
        target_latency: Optional[float] = None,
        max_area: Optional[float] = None,
        prune: bool = True,
    ) -> ExplorationResult:
        """Strategy-driven exploration: run *strategy* until its
        ``budget`` of settled corners (evaluated + pruned) is spent,
        the strategy converges (``done()`` or an empty proposal
        round), or a sweep goal is met.

        Each round, the engine pulls proposals, materializes them
        through *job_factory* (a ``GridPoint -> SynthesisJob``
        callable, e.g. :func:`~repro.dse.grid.job_from_point` wrapped
        over the design source), stamps the proposal's escalating
        :attr:`~repro.spark.SynthesisJob.priority`, and evaluates the
        round through the normal sweep core — cache, dominance
        pruner (shared across rounds), batching, any executor.
        Outcomes feed back to ``strategy.observe`` **in proposal
        order** after the round fully settles, never in completion
        order, so a seeded search replays bit-identically across
        serial, pool and broker executors.

        Proposals whose cache key already settled this search are
        deduped: not re-dispatched, not budgeted, replayed to
        ``observe`` from the visited set.  Once the goal is met,
        ``propose`` is never called again and in-flight work is
        withdrawn (counted in ``report.withdrawn``).  The round trace
        and counters land in ``result.search``.
        """
        if budget < 1:
            raise ValueError(f"search budget must be >= 1, got {budget}")
        started = time.perf_counter()
        goal = SweepGoal(target_latency=target_latency, max_area=max_area)
        pruner = InfeasiblePruner() if prune else None
        result = ExplorationResult(workers=self.workers)
        if isinstance(self.executor, Executor):
            result.executor = self.executor.kind
        elif self.executor != "auto":
            result.executor = self.executor
        report = SearchReport(
            strategy=strategy.name,
            seed=getattr(strategy, "seed", 0),
            budget=budget,
        )
        result.search = report
        #: Every cache key this search has proposed; the value is the
        #: settled outcome, or ``None`` while (or forever, if
        #: withdrawn) unsettled.
        visited: Dict[str, Optional[SynthesisOutcome]] = {}
        goal_met = False
        dry_rounds = 0
        while (
            not goal_met
            and report.settled < budget
            and not strategy.done()
        ):
            proposals = strategy.propose(budget - report.settled)
            if not proposals:
                break
            report.rounds += 1
            round_entries: List[tuple] = []
            for proposal in proposals[: budget - report.settled]:
                proposal.round = report.rounds
                job = job_factory(proposal.point)
                if proposal.priority and job.priority == 0:
                    job = dataclasses.replace(
                        job, priority=proposal.priority
                    )
                proposal.key = job_key(job)
                report.proposed += 1
                if proposal.key in visited:
                    # Already proposed this search (e.g. two beam
                    # parents mutating into the same corner): replay
                    # the settled outcome to the strategy, free of
                    # budget; an unsettled (withdrawn) key stays mute.
                    report.deduped += 1
                    known = visited[proposal.key]
                    if known is not None:
                        strategy.observe(proposal, known)
                    report.trace.append(_trace_entry(proposal, "deduped"))
                    continue
                visited[proposal.key] = None
                round_entries.append((proposal, job))
            if not round_entries:
                dry_rounds += 1
                if dry_rounds >= DRY_ROUND_LIMIT:
                    break
                continue
            dry_rounds = 0
            indexed, round_result = self._explore_indexed(
                [job for _proposal, job in round_entries],
                on_outcome,
                goal,
                pruner,
            )
            result.cache_hits += round_result.cache_hits
            result.executed += round_result.executed
            result.pruned += round_result.pruned
            result.skipped += round_result.skipped
            result.deduped += round_result.deduped
            result.executor = round_result.executor
            goal_met = round_result.goal_met
            # Observe in *proposal* order — the round is fully settled
            # by now, so completion order (executor-dependent) can
            # never leak into the strategy's decisions.
            for (proposal, _job), outcome in zip(round_entries, indexed):
                if outcome is None:
                    report.withdrawn += 1
                    report.trace.append(_trace_entry(proposal, "withdrawn"))
                    continue
                visited[proposal.key] = outcome
                result.outcomes.append(outcome)
                result.front.update(outcome)
                strategy.observe(proposal, outcome)
                if outcome.provenance == "pruned":
                    report.pruned += 1
                    action = "pruned"
                elif outcome.provenance == "dedup":
                    report.deduped += 1
                    action = "deduped"
                else:
                    report.evaluated += 1
                    action = outcome.provenance  # "run" or "cache"
                report.trace.append(_trace_entry(proposal, action))
        report.best_label = getattr(strategy, "best_label", "")
        result.goal_met = goal_met
        result.elapsed = time.perf_counter() - started
        return result

    # -- execution ----------------------------------------------------------

    def _make_executor(self, job_count: int) -> Executor:
        """The executor instance for one sweep's misses."""
        if isinstance(self.executor, Executor):
            return self.executor
        broker_dir = self.broker_dir
        if self.executor == "broker" and broker_dir is None:
            root = (
                self.cache.root if self.cache is not None
                else default_cache_dir()
            )
            broker_dir = Path(root) / BROKER_DIR_NAME
        return make_executor(
            self.executor,
            workers=self.workers,
            job_count=job_count,
            broker_dir=broker_dir,
            lease_ttl=self.lease_ttl,
        )

    def _prepared(self, job: SynthesisJob) -> SynthesisJob:
        """Stamp engine-wide execution policy onto a job before
        dispatch (never mutates the caller's job): the wall-clock
        budget when the job carries none, and the stage-artifact
        directory so every worker — local or on a broker machine
        mounting the same path — shares stage snapshots."""
        updates: dict = {}
        if self.job_timeout is not None and job.timeout is None:
            updates["timeout"] = self.job_timeout
        if self.stage_spec is not None and not job.stage_cache_dir:
            updates["stage_cache_dir"] = self.stage_spec
        if self.verify and not job.verify:
            updates["verify"] = True
        if self.lint_rtl and not job.lint_rtl:
            updates["lint_rtl"] = True
        if not updates:
            return job
        return dataclasses.replace(job, **updates)

    def _settle_fresh(
        self,
        index: int,
        key: str,
        outcome: SynthesisOutcome,
        result: ExplorationResult,
        settle: Callable[[int, str, SynthesisOutcome], bool],
    ) -> bool:
        result.executed += 1
        if self.cache is not None:
            self.cache.put(key, outcome)  # put drops uncacheable outcomes
        return settle(index, key, outcome)

    def _dispatch(
        self,
        executor: Executor,
        batch: List[Tuple[int, str, SynthesisJob]],
        result: ExplorationResult,
        pruner: Optional[InfeasiblePruner],
        settle: Callable[[int, str, SynthesisOutcome], bool],
    ) -> None:
        """Prune-then-submit one miss batch.  Pruning happens here, at
        dispatch time, so evidence from completions retires the
        queue's tail; survivors of a multi-member batch go down as one
        unit so the backend can share their stage snapshot."""
        entries: List[Tuple[Tuple[int, str], SynthesisJob]] = []
        for index, key, job in batch:
            witness = pruner.veto(job) if pruner is not None else None
            if witness is not None:
                result.pruned += 1
                settle(index, key, _pruned_outcome(job, witness))
                continue
            entries.append(((index, key), self._prepared(job)))
        if not entries:
            return
        if len(entries) == 1:
            executor.submit(*entries[0])
        else:
            executor.submit_batch(entries)

    def _run_pending(
        self,
        first: List[Tuple[int, str, SynthesisJob]],
        stream: _MissStream,
        result: ExplorationResult,
        pruner: Optional[InfeasiblePruner],
        settle: Callable[[int, str, SynthesisOutcome], bool],
    ) -> bool:
        """Stream the misses through the executor: keep the submit
        window full (pulling further batches from the scan as slots
        free up), observe completions as they land, and on goal
        early-exit withdraw whatever the executor has not started.

        The executor is sized by the stream's *upper bound* (misses
        can only be counted by scanning, which now happens during
        execution); the window is ``capacity`` batches' worth of jobs,
        so batching widens throughput without changing backend width.
        """
        upper = stream.upper_bound() + len(first)
        executor = self._make_executor(upper)
        result.executor = executor.kind
        goal_met = False
        executor.open(upper)
        try:
            window = executor.capacity * self.batch_size
            self._dispatch(executor, first, result, pruner, settle)
            while True:
                while (
                    not goal_met
                    and not stream.goal_met
                    and executor.outstanding < window
                ):
                    batch = stream.next_batch(
                        eager=executor.outstanding == 0
                    )
                    if batch is None:
                        break
                    self._dispatch(executor, batch, result, pruner, settle)
                if goal_met or stream.goal_met:
                    # Withdraw whatever the executor has not started —
                    # on every drain iteration, not just once: a
                    # broker job whose worker died after the first
                    # pass is requeued, and cancellable again, rather
                    # than waited on forever.
                    goal_met = True
                    result.skipped += len(executor.cancel_pending())
                if executor.outstanding == 0:
                    # The dispatch loop above only stops with an empty
                    # window when the goal is met or the scan is done
                    # (pruned jobs settle inline and the loop keeps
                    # dispatching), so this is the exit.
                    break
                settled = executor.collect()
                if settled is None:
                    # Draining cancellations emptied the in-flight set
                    # mid-collect; loop around to account for them.
                    continue
                (index, key), outcome = settled
                if self._settle_fresh(index, key, outcome, result, settle):
                    goal_met = True
        finally:
            executor.close()
        # Misses never dispatched and jobs never scanned are skipped,
        # exactly like the pre-dispatch tail on goal early-exit.
        result.skipped += stream.buffered + stream.unscanned()
        return goal_met


def explore(
    jobs: Sequence[SynthesisJob],
    workers: int = 1,
    cache_dir: Union[str, Path, None] = None,
    use_cache: bool = True,
    cache_backend: Optional[str] = None,
    on_outcome: Optional[OutcomeCallback] = None,
    target_latency: Optional[float] = None,
    max_area: Optional[float] = None,
    prune: bool = True,
    executor: Union[str, Executor] = "auto",
    job_timeout: Optional[float] = None,
    broker_dir: Union[str, Path, None] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    stage_cache: bool = True,
    batch_size: int = 1,
    verify: bool = False,
    lint_rtl: bool = False,
) -> ExplorationResult:
    """One-call convenience sweep."""
    engine = ExplorationEngine(
        cache_dir=cache_dir,
        workers=workers,
        use_cache=use_cache,
        cache_backend=cache_backend,
        executor=executor,
        job_timeout=job_timeout,
        broker_dir=broker_dir,
        lease_ttl=lease_ttl,
        stage_cache=stage_cache,
        batch_size=batch_size,
        verify=verify,
        lint_rtl=lint_rtl,
    )
    return engine.explore(
        jobs,
        on_outcome=on_outcome,
        target_latency=target_latency,
        max_area=max_area,
        prune=prune,
    )
