"""The exploration engine: adaptive, streaming, cache-aware fan-out.

The engine evolved from a batch ``Pool.map`` into an adaptive loop:

1. every job is keyed by content hash and looked up in the on-disk
   cache (when caching is enabled); hits stream straight to the
   caller's ``on_outcome`` callback and seed the Pareto frontier and
   the dominance pruner;
2. misses execute as a *stream* — serially when ``workers == 1``,
   otherwise through a bounded ``apply_async`` window over a
   ``multiprocessing`` pool, so each completion is observed the moment
   it lands rather than at an end-of-sweep barrier;
3. each completion updates the latency/area frontier, may satisfy the
   sweep goal (``target_latency`` / ``max_area``) and stop the sweep
   early, and may prove pending corners infeasible by dominance so
   they are pruned without ever running;
4. cacheable fresh outcomes (successes and deterministic
   infeasibility — never environment trouble) are written back;
5. results come back in job order regardless of completion order.

``execute_job`` is a pure module-level function over picklable
dataclasses; environment factories (external callables, libraries)
are resolved inside each worker, never shipped across the process
boundary.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.dse.cache import (
    ResultCache,
    default_cache_dir,
    job_key,
    names_bare_cwd,
)
from repro.dse.pareto import InfeasiblePruner, ParetoFront, SweepGoal
from repro.dse.service import maybe_auto_gc
from repro.spark import (
    ERROR_KIND_ENVIRONMENT,
    ERROR_KIND_UNSCHEDULABLE,
    SynthesisJob,
    SynthesisOutcome,
    execute_job,
)

#: Callback invoked once per settled outcome (hit, fresh run or prune),
#: in completion order.
OutcomeCallback = Callable[[SynthesisOutcome], None]


@dataclass
class ExplorationResult:
    """Everything one sweep produced, in job order.

    ``outcomes`` holds every job that *settled* — executed, recalled
    from cache, or pruned as provably infeasible.  Jobs abandoned by
    an early exit are only counted (``skipped``), never fabricated.
    """

    outcomes: List[SynthesisOutcome] = field(default_factory=list)
    cache_hits: int = 0
    executed: int = 0
    pruned: int = 0
    skipped: int = 0
    goal_met: bool = False
    elapsed: float = 0.0
    workers: int = 1
    front: ParetoFront = field(default_factory=ParetoFront)

    @property
    def feasible(self) -> List[SynthesisOutcome]:
        return [outcome for outcome in self.outcomes if outcome.ok]

    @property
    def frontier(self) -> List[SynthesisOutcome]:
        """The latency/area non-dominated outcomes, fastest first."""
        return self.front.points()

    def ranked(self) -> List[SynthesisOutcome]:
        """Outcomes by ascending score (best design point first);
        stable and deterministic for equal metrics via the label."""
        return sorted(self.outcomes, key=lambda outcome: outcome.score())

    def best(self) -> Optional[SynthesisOutcome]:
        feasible = self.feasible
        if not feasible:
            return None
        return min(feasible, key=lambda outcome: outcome.score())


def _pruned_outcome(job: SynthesisJob, witness: str) -> SynthesisOutcome:
    """The outcome recorded for a corner proven infeasible by
    dominance: infeasible like its witness, but tagged so it is never
    cached and its origin is visible in reports."""
    return SynthesisOutcome(
        label=job.label,
        ok=False,
        error=f"pruned: dominated by infeasible point `{witness}`",
        error_kind=ERROR_KIND_UNSCHEDULABLE,
        provenance="pruned",
        clock_period=job.script.clock_period,
    )


def _failure_outcome(job: SynthesisJob, error: BaseException) -> SynthesisOutcome:
    """Fallback for pool-level failures (e.g. a result that cannot be
    unpickled) — classified as environment trouble, never cached."""
    return SynthesisOutcome(
        label=job.label,
        ok=False,
        error=f"{type(error).__name__}: {error}",
        error_kind=ERROR_KIND_ENVIRONMENT,
        clock_period=job.script.clock_period,
    )


class ExplorationEngine:
    """Runs batches of synthesis jobs with memoization, streaming
    results, Pareto tracking, dominance pruning and early exit.

    Parameters
    ----------
    cache_dir:
        cache directory; ``None`` selects the default location and an
        empty string disables caching entirely.
    workers:
        process-pool width for cache misses; ``1`` runs in-process.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path, None] = None,
        workers: int = 1,
        use_cache: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache: Optional[ResultCache] = None
        # An empty cache_dir means "no cache", exactly like
        # use_cache=False.  Path("") silently becomes the *current
        # directory*, so every spelling that normalizes to the cwd
        # root ("", ".", "./", Path("")) is treated as disabled rather
        # than spraying <sha>.json entries next to the user's files.
        # A deliberate cwd-relative cache needs an explicit "./name".
        if use_cache and (cache_dir is None or not names_bare_cwd(cache_dir)):
            self.cache = ResultCache(
                cache_dir if cache_dir is not None else default_cache_dir()
            )

    def explore(
        self,
        jobs: Sequence[SynthesisJob],
        on_outcome: Optional[OutcomeCallback] = None,
        target_latency: Optional[float] = None,
        max_area: Optional[float] = None,
        prune: bool = True,
    ) -> ExplorationResult:
        """Execute (or recall, or prune) every job.

        ``on_outcome`` fires once per settled outcome in completion
        order; ``result.outcomes`` stays in job order.  With a
        ``target_latency`` and/or ``max_area`` goal the sweep stops as
        soon as a feasible outcome satisfies every set constraint;
        with ``prune`` (the default) pending corners provably at least
        as constrained as an observed deterministically-infeasible
        corner are marked infeasible without executing.
        """
        started = time.perf_counter()
        goal = SweepGoal(target_latency=target_latency, max_area=max_area)
        result = ExplorationResult(workers=self.workers)
        outcomes: List[Optional[SynthesisOutcome]] = [None] * len(jobs)
        pruner = InfeasiblePruner() if prune else None
        pending: List[Tuple[int, str, SynthesisJob]] = []

        def settle(index: int, outcome: SynthesisOutcome) -> bool:
            """Record one settled outcome; True when it meets the goal."""
            outcomes[index] = outcome
            result.front.update(outcome)
            if pruner is not None:
                pruner.observe(jobs[index], outcome)
            if on_outcome is not None:
                on_outcome(outcome)
            return goal.satisfied_by(outcome)

        goal_met = False
        for index, job in enumerate(jobs):
            key = job_key(job) if self.cache is not None else ""
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                cached.label = job.label  # labels are presentation-only
                result.cache_hits += 1
                if settle(index, cached):
                    # A recalled outcome met the goal: don't hash or
                    # read another entry, count the unscanned tail as
                    # skipped along with the misses seen so far.
                    goal_met = True
                    result.skipped += len(jobs) - (index + 1)
                    break
            else:
                pending.append((index, key, job))

        if pending and not goal_met:
            goal_met = self._run_pending(pending, result, pruner, settle)
        elif pending:
            result.skipped += len(pending)

        result.goal_met = goal_met
        result.outcomes = [
            outcome for outcome in outcomes if outcome is not None
        ]
        result.elapsed = time.perf_counter() - started
        if self.cache is not None:
            maybe_auto_gc(self.cache.root)
        return result

    # -- execution ----------------------------------------------------------

    def _settle_fresh(
        self,
        index: int,
        key: str,
        outcome: SynthesisOutcome,
        result: ExplorationResult,
        settle: Callable[[int, SynthesisOutcome], bool],
    ) -> bool:
        result.executed += 1
        if self.cache is not None:
            self.cache.put(key, outcome)  # put drops uncacheable outcomes
        return settle(index, outcome)

    def _run_pending(
        self,
        pending: List[Tuple[int, str, SynthesisJob]],
        result: ExplorationResult,
        pruner: Optional[InfeasiblePruner],
        settle: Callable[[int, SynthesisOutcome], bool],
    ) -> bool:
        if self.workers > 1 and len(pending) > 1:
            return self._run_pending_pool(pending, result, pruner, settle)
        goal_met = False
        for position, (index, key, job) in enumerate(pending):
            if goal_met:
                result.skipped = len(pending) - position
                break
            witness = pruner.veto(job) if pruner is not None else None
            if witness is not None:
                result.pruned += 1
                settle(index, _pruned_outcome(job, witness))
                continue
            if self._settle_fresh(index, key, execute_job(job), result, settle):
                goal_met = True
        return goal_met

    def _run_pending_pool(
        self,
        pending: List[Tuple[int, str, SynthesisJob]],
        result: ExplorationResult,
        pruner: Optional[InfeasiblePruner],
        settle: Callable[[int, SynthesisOutcome], bool],
    ) -> bool:
        """Streaming parallel execution: a bounded ``apply_async``
        window (one slot per worker) instead of a single ``map``
        barrier, so completions are observed as they land and the
        undispatched tail can still be pruned or skipped."""
        pool_size = min(self.workers, len(pending))
        completed: "queue.SimpleQueue[Tuple[int, str, SynthesisOutcome]]" = (
            queue.SimpleQueue()
        )
        goal_met = False
        cursor = 0
        outstanding = 0
        with multiprocessing.Pool(processes=pool_size) as pool:
            while True:
                # Dispatch up to the window, pruning at dispatch time so
                # evidence from completions retires the queue's tail.
                while (
                    not goal_met
                    and cursor < len(pending)
                    and outstanding < pool_size
                ):
                    index, key, job = pending[cursor]
                    cursor += 1
                    witness = (
                        pruner.veto(job) if pruner is not None else None
                    )
                    if witness is not None:
                        result.pruned += 1
                        settle(index, _pruned_outcome(job, witness))
                        continue
                    pool.apply_async(
                        execute_job,
                        (job,),
                        callback=(
                            lambda outcome, index=index, key=key:
                            completed.put((index, key, outcome))
                        ),
                        error_callback=(
                            lambda error, index=index, key=key, job=job:
                            completed.put(
                                (index, key, _failure_outcome(job, error))
                            )
                        ),
                    )
                    outstanding += 1
                if outstanding == 0:
                    # The dispatch loop above only stops with an empty
                    # window when the goal is met or the queue is
                    # exhausted (pruned jobs settle inline and the
                    # loop keeps dispatching), so this is the exit.
                    break
                index, key, outcome = completed.get()
                outstanding -= 1
                if self._settle_fresh(index, key, outcome, result, settle):
                    goal_met = True
        result.skipped += len(pending) - cursor
        return goal_met


def explore(
    jobs: Sequence[SynthesisJob],
    workers: int = 1,
    cache_dir: Union[str, Path, None] = None,
    use_cache: bool = True,
    on_outcome: Optional[OutcomeCallback] = None,
    target_latency: Optional[float] = None,
    max_area: Optional[float] = None,
    prune: bool = True,
) -> ExplorationResult:
    """One-call convenience sweep."""
    engine = ExplorationEngine(
        cache_dir=cache_dir, workers=workers, use_cache=use_cache
    )
    return engine.explore(
        jobs,
        on_outcome=on_outcome,
        target_latency=target_latency,
        max_area=max_area,
        prune=prune,
    )
