"""Design-space exploration: parallel, memoized script sweeps.

The paper's Spark system is scripted by design — the designer sweeps
transformation scripts and resource allocations looking for the
schedule that meets a latency target at the least cost.  This package
turns that loop into an engine:

* :mod:`repro.dse.grid` — named axes (clock, unroll, preset, resource
  limits, scheduler priority, ...) expanded into a cartesian grid of
  picklable :class:`~repro.spark.SynthesisJob` descriptions;
* :mod:`repro.dse.runner` — :class:`ExplorationEngine` streams cache
  misses through a pluggable executor, recalls previous results
  from the on-disk cache, prunes provably infeasible corners and can
  exit early once a latency/area goal is met;
* :mod:`repro.dse.exec` — the executor backends: in-process serial, a
  dead-worker-tolerant ``multiprocessing`` pool, and the distributed
  broker executor;
* :mod:`repro.dse.broker` — the filesystem job broker behind
  ``repro dse-worker``: atomic-rename claims, heartbeat leases, and
  requeue-on-expiry crash recovery;
* :mod:`repro.dse.search` — adaptive strategies (beam search,
  simulated annealing, multi-seed random restarts) that *choose*
  which corners to evaluate instead of sweeping the whole grid,
  driven by :meth:`ExplorationEngine.search`;
* :mod:`repro.dse.pareto` — the latency/area frontier, sweep goals
  and the dominance pruner;
* :mod:`repro.dse.cache` — content-hash keyed outcome store, plus
  per-stage keys into the staged flow's artifact store
  (:mod:`repro.flow`): sweeps varying only late-stage knobs recall
  the shared frontend/transform/schedule snapshots instead of
  recomputing them;
* :mod:`repro.dse.service` — maintenance over a shared cache
  directory: locking, stats, ``clear`` and size-bounded LRU ``gc``
  (the ``repro cache`` CLI);
* :mod:`repro.dse.report` — deterministic ranking and trade-off
  tables.

Driven from the CLI as ``repro dse design.c --vary clock=4,6,8 ...``
(see ``docs/dse.md``) or programmatically::

    from repro.dse import ParameterGrid, jobs_from_grid, explore

    grid = ParameterGrid([("clock", [4.0, 8.0]), ("unroll", [{}, {"*": 0}])])
    result = explore(jobs_from_grid(source, grid), workers=4)
    print(result.best().label)
"""

from repro.dse.broker import (
    BROKER_DIR_NAME,
    DEFAULT_LEASE_TTL,
    BrokerClaim,
    BrokerStats,
    JobBroker,
    WorkerReport,
    default_worker_id,
    run_worker,
)
from repro.dse.cache import (
    CACHE_ENV_VAR,
    ResultCache,
    default_cache_dir,
    job_key,
    stage_key,
)
from repro.dse.exec import (
    EXECUTOR_KINDS,
    BrokerExecutor,
    Executor,
    PoolExecutor,
    SerialExecutor,
    default_start_method,
    make_executor,
)
from repro.dse.grid import (
    AXIS_STAGES,
    GridError,
    GridPoint,
    KNOWN_AXES,
    ORDERED_AXES,
    ParameterGrid,
    axes_late_first,
    axis_neighbor_values,
    first_point,
    grid_from_specs,
    job_from_point,
    jobs_from_grid,
    mutate_point,
    parse_axis_value,
    parse_vary_spec,
    random_point,
    script_for_point,
    shared_stages,
    stage_for_axis,
    varied_stages,
)
from repro.dse.pareto import (
    InfeasiblePruner,
    ParetoFront,
    SweepGoal,
    dominates,
    scalar_score,
)
from repro.dse.report import (
    format_frontier,
    format_search_summary,
    format_search_trace,
    format_stage_breakdown,
    format_table,
    rank_outcomes,
    summarize,
)
from repro.dse.runner import ExplorationEngine, ExplorationResult, explore
from repro.dse.search import (
    STRATEGY_KINDS,
    BeamSearch,
    GridWalk,
    Proposal,
    RandomRestartSearch,
    SearchReport,
    SearchStrategy,
    SimulatedAnnealing,
    make_strategy,
)
from repro.dse.service import (
    CacheLockTimeout,
    CacheService,
    CacheStats,
    DirectoryLock,
    GCReport,
    MAX_BYTES_ENV_VAR,
)
from repro.dse.storage import (
    BACKEND_KINDS,
    StorageBackend,
    make_backend,
)

__all__ = [
    "AXIS_STAGES",
    "BACKEND_KINDS",
    "BROKER_DIR_NAME",
    "BeamSearch",
    "BrokerClaim",
    "BrokerExecutor",
    "BrokerStats",
    "CACHE_ENV_VAR",
    "CacheLockTimeout",
    "CacheService",
    "CacheStats",
    "DEFAULT_LEASE_TTL",
    "DirectoryLock",
    "EXECUTOR_KINDS",
    "ExplorationEngine",
    "ExplorationResult",
    "Executor",
    "GCReport",
    "GridError",
    "GridPoint",
    "GridWalk",
    "InfeasiblePruner",
    "JobBroker",
    "KNOWN_AXES",
    "MAX_BYTES_ENV_VAR",
    "ORDERED_AXES",
    "ParameterGrid",
    "ParetoFront",
    "PoolExecutor",
    "Proposal",
    "RandomRestartSearch",
    "ResultCache",
    "STRATEGY_KINDS",
    "SearchReport",
    "SearchStrategy",
    "SerialExecutor",
    "SimulatedAnnealing",
    "StorageBackend",
    "SweepGoal",
    "WorkerReport",
    "axes_late_first",
    "axis_neighbor_values",
    "default_cache_dir",
    "default_start_method",
    "default_worker_id",
    "dominates",
    "explore",
    "first_point",
    "make_executor",
    "make_strategy",
    "mutate_point",
    "random_point",
    "run_worker",
    "format_frontier",
    "format_search_summary",
    "format_search_trace",
    "format_stage_breakdown",
    "format_table",
    "grid_from_specs",
    "job_from_point",
    "job_key",
    "jobs_from_grid",
    "make_backend",
    "parse_axis_value",
    "parse_vary_spec",
    "rank_outcomes",
    "scalar_score",
    "script_for_point",
    "shared_stages",
    "stage_for_axis",
    "stage_key",
    "summarize",
    "varied_stages",
]
