"""The executor protocol: how the exploration engine fans jobs out.

The engine owns *policy* — cache lookups, dominance pruning, goal
early-exit, result ordering — and an :class:`Executor` owns
*mechanism*: actually running the jobs the engine dispatches.  The
contract is a bounded submit/collect window:

* the engine calls :meth:`Executor.open` once per sweep, then keeps at
  most :attr:`Executor.capacity` jobs in flight via
  :meth:`Executor.submit`;
* :meth:`Executor.collect` blocks until **some** submitted job settles
  and returns its token and outcome — and must always settle every
  submitted job eventually, even when the machinery under it fails
  (a killed worker process, a lost machine).  Fault tolerance is part
  of the contract, not an engine concern: an executor may settle a job
  with an ``error_kind="environment"`` outcome, but may never hang on
  it or raise through ``collect``;
* :meth:`Executor.cancel_pending` lets the engine withdraw jobs that
  were submitted but not yet started (used on goal early-exit);
  executors that cannot cancel return ``[]`` and the engine simply
  drains them.

A *token* is the engine's opaque handle for one job — ``(job index,
cache key)`` — threaded through unchanged so completions can land in
any order.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from repro.spark import (
    ERROR_KIND_ENVIRONMENT,
    SynthesisJob,
    SynthesisOutcome,
)

#: The engine's opaque per-job handle: ``(job index, cache key)``.
Token = Tuple[int, str]


def failure_outcome(job: SynthesisJob, detail: str) -> SynthesisOutcome:
    """The outcome an executor settles a job with when the machinery —
    not the job — failed (a dead worker, an unpicklable result, a lost
    machine).  Classified as environment trouble so it is never
    memoized and never becomes pruning evidence."""
    return SynthesisOutcome(
        label=job.label,
        ok=False,
        error=detail,
        error_kind=ERROR_KIND_ENVIRONMENT,
        clock_period=job.script.clock_period,
    )


class Executor(abc.ABC):
    """One sweep's execution backend (see the module docstring)."""

    #: Stable spelling for CLIs and reports: "serial", "pool", ...
    kind: str = "executor"

    #: Upper bound on jobs in flight; the engine never submits past
    #: it.  May be adjusted by :meth:`open` (e.g. to the pool width).
    capacity: int = 1

    def open(self, job_count: int) -> None:
        """Acquire resources for a sweep of at most *job_count* jobs
        (spin up processes, create directories).  Called exactly once
        before the first submit."""

    def close(self) -> None:
        """Release every resource; called exactly once per sweep, even
        on error paths.  Must be safe when open() never ran."""

    @abc.abstractmethod
    def submit(self, token: Token, job: SynthesisJob) -> None:
        """Hand one job to the backend.  Only called while
        ``outstanding < capacity``."""

    def submit_batch(
        self, entries: List[Tuple[Token, SynthesisJob]]
    ) -> None:
        """Hand a *prefix-sharing* batch to the backend as one unit of
        work: the engine groups these jobs because they share a
        transform-stage key, so a backend that runs them in one
        process (:func:`repro.spark.execute_job_batch`) loads the
        stage snapshot once and reuses it across the batch.

        Each member still settles individually through
        :meth:`collect` — a batch is a dispatch optimization, never an
        outcome-granularity change.  The default degrades to per-job
        submits (correct, just without snapshot sharing), so the
        engine may batch against any executor.  The engine sizes its
        submit window in *jobs* (``capacity × batch size``); a batch
        may briefly overshoot plain ``capacity``.
        """
        for token, job in entries:
            self.submit(token, job)

    @abc.abstractmethod
    def collect(self) -> Optional[Tuple[Token, SynthesisOutcome]]:
        """Block until any submitted job settles; never raises for
        job- or worker-level failures (those settle as outcomes).

        May return ``None`` only when a prior :meth:`cancel_pending`
        put the executor in draining mode and cancellation emptied the
        in-flight set mid-wait — the engine then collects the
        withdrawn tokens through another ``cancel_pending`` call."""

    @property
    @abc.abstractmethod
    def outstanding(self) -> int:
        """Jobs submitted but not yet collected (or cancelled)."""

    def cancel_pending(self) -> List[Token]:
        """Withdraw submitted-but-unstarted jobs, returning their
        tokens; the default cannot cancel anything."""
        return []
