"""In-process execution: the ``--workers 1`` path, one job at a time."""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.dse.exec.base import Executor, Token
from repro.spark import (
    SynthesisJob,
    SynthesisOutcome,
    execute_job,
    execute_job_batch,
)


class SerialExecutor(Executor):
    """Runs each job inline in the calling process.

    ``submit`` only enqueues; the work happens in ``collect``, so the
    engine observes the same submit/collect rhythm as with any other
    backend (and dispatch-time pruning sees every prior completion).

    Batches (:meth:`submit_batch`) execute as one
    :func:`~repro.spark.execute_job_batch` call — the whole batch runs
    on the first ``collect`` that reaches it, and the remaining
    members drain one per subsequent ``collect``.
    """

    kind = "serial"
    capacity = 1

    def __init__(self) -> None:
        #: Units of work: each entry is one batch (singletons included).
        self._pending: List[List[Tuple[Token, SynthesisJob]]] = []
        #: Settled batch members not yet handed to the engine.
        self._ready: Deque[Tuple[Token, SynthesisOutcome]] = deque()

    def open(self, job_count: int) -> None:
        self._pending.clear()  # instances may be reused across sweeps
        self._ready.clear()

    def submit(self, token: Token, job: SynthesisJob) -> None:
        self._pending.append([(token, job)])

    def submit_batch(
        self, entries: List[Tuple[Token, SynthesisJob]]
    ) -> None:
        self._pending.append(list(entries))

    def collect(self) -> Tuple[Token, SynthesisOutcome]:
        if not self._ready:
            batch = self._pending.pop(0)
            if len(batch) == 1:
                token, job = batch[0]
                return token, execute_job(job)
            outcomes = execute_job_batch([job for _token, job in batch])
            self._ready.extend(
                (token, outcome)
                for (token, _job), outcome in zip(batch, outcomes)
            )
        return self._ready.popleft()

    @property
    def outstanding(self) -> int:
        return sum(len(batch) for batch in self._pending) + len(self._ready)
