"""In-process execution: the ``--workers 1`` path, one job at a time."""

from __future__ import annotations

from typing import List, Tuple

from repro.dse.exec.base import Executor, Token
from repro.spark import SynthesisJob, SynthesisOutcome, execute_job


class SerialExecutor(Executor):
    """Runs each job inline in the calling process.

    ``submit`` only enqueues; the work happens in ``collect``, so the
    engine observes the same submit/collect rhythm as with any other
    backend (and dispatch-time pruning sees every prior completion).
    """

    kind = "serial"
    capacity = 1

    def __init__(self) -> None:
        self._pending: List[Tuple[Token, SynthesisJob]] = []

    def open(self, job_count: int) -> None:
        self._pending.clear()  # instances may be reused across sweeps

    def submit(self, token: Token, job: SynthesisJob) -> None:
        self._pending.append((token, job))

    def collect(self) -> Tuple[Token, SynthesisOutcome]:
        token, job = self._pending.pop(0)
        return token, execute_job(job)

    @property
    def outstanding(self) -> int:
        return len(self._pending)
