"""Process-pool execution with worker-loss detection.

This rebuilds the engine's bounded ``apply_async`` window on an
explicit ``multiprocessing`` context and makes it hang-proof.  The
previous implementation blocked forever in ``completed.get()`` when a
pool worker was hard-killed (OOM killer, SIGKILL): neither the
``apply_async`` callback nor the error callback ever fires for a task
whose worker died, so the sweep wedged with work it could never
collect.  Here ``collect`` polls with a bounded timeout and plays
coroner:

* every worker announces ``(pid, task)`` on a start queue the moment
  it picks a task up, so the parent knows which task each worker is
  chewing on;
* on each poll timeout the parent compares those pids against the
  pool's live workers; a task attributed to a vanished pid is — after
  one grace re-poll for a result already in flight through the pool's
  result-handler thread — settled as an ``error_kind="environment"``
  failure (never cached, never pruning evidence) and the sweep moves
  on.  ``multiprocessing.Pool`` respawns the dead worker itself, so
  the remaining queue keeps draining;
* a backstop covers the sliver where a worker dies *between* claiming
  a task and announcing it: when nothing is attributed-running and
  nothing has settled for ``stall_timeout`` seconds, the oldest
  unattributed task is failed the same way.

The context is pinned explicitly instead of trusting the platform
default: ``fork`` inherits arbitrary parent state (threads, locks —
unsafe and increasingly deprecated; Python 3.14 flips the Linux
default away from it).  We prefer ``forkserver`` (POSIX: clean
single-purpose parent to fork from, cheap after the first spawn) and
fall back to ``spawn`` elsewhere — both require every job to survive a
pickle round-trip, which :class:`~repro.spark.SynthesisJob` guarantees
by construction.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.dse.exec.base import Executor, Token, failure_outcome
from repro.spark import (
    SynthesisJob,
    SynthesisOutcome,
    execute_job,
    execute_job_batch,
)

#: Environment variable overriding the pinned start method (one of
#: ``fork``/``forkserver``/``spawn``), for platforms where the
#: preference order is wrong.
START_METHOD_ENV_VAR = "REPRO_DSE_START_METHOD"


def default_start_method() -> str:
    """``forkserver`` where available, else ``spawn`` — never the
    platform default (see module docstring)."""
    override = os.environ.get(START_METHOD_ENV_VAR, "")
    methods = multiprocessing.get_all_start_methods()
    if override:
        if override not in methods:
            raise ValueError(
                f"${START_METHOD_ENV_VAR}={override!r} is not a start "
                f"method on this platform (have: {', '.join(methods)})"
            )
        return override
    return "forkserver" if "forkserver" in methods else "spawn"


# Worker-side globals, installed by the pool initializer.
_STARTED_QUEUE = None


def _pool_init(started_queue) -> None:
    global _STARTED_QUEUE
    _STARTED_QUEUE = started_queue


def _announce(task_id: int) -> None:
    if _STARTED_QUEUE is not None:
        try:
            _STARTED_QUEUE.put((os.getpid(), task_id))
        except Exception:
            pass  # attribution is best-effort; the backstop still covers us


def _pool_entry(task_id: int, job: SynthesisJob) -> Tuple[int, SynthesisOutcome]:
    """Runs in the worker: announce the claim, then execute."""
    _announce(task_id)
    return task_id, execute_job(job)


def _pool_entry_batch(
    task_id: int, jobs: List[SynthesisJob]
) -> Tuple[int, List[SynthesisOutcome]]:
    """Runs in the worker: one prefix-sharing batch, one snapshot load."""
    _announce(task_id)
    return task_id, execute_job_batch(jobs)


class PoolExecutor(Executor):
    """Bounded ``apply_async`` window over an explicit-context
    ``multiprocessing.Pool``, with dead-worker detection (see module
    docstring).

    Parameters
    ----------
    workers:
        pool width; also the submit-window capacity.
    start_method:
        multiprocessing start method; default per
        :func:`default_start_method`.
    poll:
        seconds between liveness checks while waiting for a result.
    stall_timeout:
        backstop: how long an unattributed task may sit with nothing
        running and nothing settling before it is failed as lost.
    """

    kind = "pool"

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        poll: float = 0.5,
        stall_timeout: float = 60.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.capacity = workers
        self.start_method = start_method or default_start_method()
        self.poll = poll
        self.stall_timeout = stall_timeout
        self._pool = None
        self._started = None  # cross-process (pid, task) announcements
        #: Parent-side results: (task, outcome) or (task, exception).
        self._completed: "queue.SimpleQueue[Tuple[int, object]]" = (
            queue.SimpleQueue()
        )
        #: Task -> its submitted (token, job) entries; singletons are
        #: one-element lists, so batch and single tasks settle alike.
        self._inflight: Dict[int, List[Tuple[Token, SynthesisJob]]] = {}
        self._running: Dict[int, int] = {}  # task -> worker pid
        #: Settled batch members not yet handed to the engine.
        self._ready: Deque[Tuple[Token, SynthesisOutcome]] = deque()
        self._next_task = 0
        self._last_progress = time.monotonic()

    # -- lifecycle ----------------------------------------------------------

    def open(self, job_count: int) -> None:
        # Per-sweep state starts clean: a pre-built instance may be
        # reused across explore() calls, including after a sweep that
        # aborted mid-flight and left entries behind — stale tokens
        # must never leak into the next sweep's slots.
        self._completed = queue.SimpleQueue()
        self._inflight.clear()
        self._running.clear()
        self._ready.clear()
        self._next_task = 0
        size = self.workers
        if job_count > 0:
            size = min(self.workers, job_count)
        self.capacity = size
        ctx = multiprocessing.get_context(self.start_method)
        self._started = ctx.SimpleQueue()
        self._pool = ctx.Pool(
            processes=size,
            initializer=_pool_init,
            initargs=(self._started,),
        )
        self._last_progress = time.monotonic()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._started = None

    # -- submit/collect ------------------------------------------------------

    def submit(self, token: Token, job: SynthesisJob) -> None:
        task_id = self._new_task([(token, job)])
        self._pool.apply_async(
            _pool_entry,
            (task_id, job),
            callback=self._deliver,
            error_callback=(
                lambda error, task_id=task_id:
                self._completed.put((task_id, error))
            ),
        )

    def submit_batch(
        self, entries: List[Tuple[Token, SynthesisJob]]
    ) -> None:
        entries = list(entries)
        if len(entries) == 1:
            self.submit(*entries[0])
            return
        task_id = self._new_task(entries)
        self._pool.apply_async(
            _pool_entry_batch,
            (task_id, [job for _token, job in entries]),
            callback=self._deliver,
            error_callback=(
                lambda error, task_id=task_id:
                self._completed.put((task_id, error))
            ),
        )

    def _new_task(self, entries: List[Tuple[Token, SynthesisJob]]) -> int:
        task_id = self._next_task
        self._next_task += 1
        self._inflight[task_id] = entries
        return task_id

    def _deliver(self, value: Tuple[int, object]) -> None:
        # Runs on the pool's result-handler thread.
        self._completed.put(value)

    @property
    def outstanding(self) -> int:
        return (
            sum(len(entries) for entries in self._inflight.values())
            + len(self._ready)
        )

    def collect(self) -> Tuple[Token, SynthesisOutcome]:
        while True:
            if self._ready:
                return self._ready.popleft()
            try:
                task_id, payload = self._completed.get(timeout=self.poll)
            except queue.Empty:
                settled = self._reap_lost_workers()
                if settled is not None:
                    return settled
                continue
            settled = self._settle(task_id, payload)
            if settled is not None:
                return settled

    def _settle(
        self, task_id: int, payload: object
    ) -> Optional[Tuple[Token, SynthesisOutcome]]:
        self._last_progress = time.monotonic()
        entries = self._inflight.pop(task_id, None)
        self._running.pop(task_id, None)
        if entries is None:
            # A straggler for a task already settled as lost (its
            # result raced the one grace poll in _reap_lost_workers):
            # drop it rather than crash the sweep.
            return None
        if isinstance(payload, BaseException):
            # Pool-level failure (e.g. the result failed to unpickle)
            # settles every member of the task.
            detail = f"{type(payload).__name__}: {payload}"
            return self._buffer(
                [
                    (token, failure_outcome(job, detail))
                    for token, job in entries
                ]
            )
        outcomes = payload if isinstance(payload, list) else [payload]
        settled = [
            (token, outcome)
            for (token, _job), outcome in zip(entries, outcomes)
        ]
        # A short result list cannot happen through execute_job_batch
        # (it never raises mid-batch), but a defective payload must
        # still settle every submitted member.
        for token, job in entries[len(settled):]:
            settled.append(
                (token, failure_outcome(job, "batch result truncated"))
            )
        return self._buffer(settled)

    def _buffer(
        self, settled: List[Tuple[Token, SynthesisOutcome]]
    ) -> Tuple[Token, SynthesisOutcome]:
        """Return the first settled member now; queue the rest for
        subsequent ``collect`` calls."""
        self._ready.extend(settled[1:])
        return settled[0]

    # -- worker-loss detection ----------------------------------------------

    def _drain_started(self) -> None:
        while self._started is not None and not self._started.empty():
            try:
                pid, task_id = self._started.get()
            except (OSError, EOFError):
                return
            if task_id in self._inflight:
                self._running[task_id] = pid
                self._last_progress = time.monotonic()

    def _live_pids(self) -> set:
        processes = getattr(self._pool, "_pool", None) or []
        return {
            process.pid
            for process in processes
            if process.exitcode is None
        }

    def _reap_lost_workers(self) -> Optional[Tuple[Token, SynthesisOutcome]]:
        """Called when a poll came up empty: settle (at most) one job
        whose worker died, or None when everything is still healthy."""
        self._drain_started()
        if not self._inflight:
            return None
        live = self._live_pids()
        dead_tasks = sorted(
            task_id
            for task_id, pid in self._running.items()
            if pid not in live and task_id in self._inflight
        )
        if dead_tasks:
            # The worker may have died *after* posting its result:
            # give the pool's result-handler thread one grace poll to
            # deliver before declaring the task lost.
            try:
                task_id, payload = self._completed.get(timeout=self.poll)
            except queue.Empty:
                pass
            else:
                # May be None for a straggler; the dead task is then
                # re-detected on the caller's next poll.
                return self._settle(task_id, payload)
            task_id = dead_tasks[0]
            pid = self._running.get(task_id)
            entries = self._inflight.pop(task_id)
            self._running.pop(task_id, None)
            self._last_progress = time.monotonic()
            # A killed worker takes its whole task down — every batch
            # member it held settles as environment trouble (the pool
            # has no per-member progress to salvage; the broker path
            # does better).
            return self._buffer(
                [
                    (
                        token,
                        failure_outcome(
                            job,
                            f"worker process {pid} died while executing "
                            f"this job (hard kill or crash); not retried",
                        ),
                    )
                    for token, job in entries
                ]
            )
        # Backstop for the claim-to-announce sliver: no task is
        # attributed to any worker, nothing is settling, and the stall
        # budget is gone — fail the oldest unattributed task.
        stalled = time.monotonic() - self._last_progress
        if not self._running and stalled > self.stall_timeout:
            task_id = min(self._inflight)
            entries = self._inflight.pop(task_id)
            self._last_progress = time.monotonic()
            return self._buffer(
                [
                    (
                        token,
                        failure_outcome(
                            job,
                            f"job made no progress for {stalled:.1f}s "
                            f"with no live claim on it (worker lost "
                            f"before announcing); not retried",
                        ),
                    )
                    for token, job in entries
                ]
            )
        return None
