"""Distributed execution through the filesystem job broker.

Where :class:`~repro.dse.exec.pool.PoolExecutor` owns its worker
processes, this executor owns none: it publishes jobs into a
:class:`~repro.dse.broker.JobBroker` directory and any number of
``repro dse-worker`` processes — on this machine or any machine
sharing the filesystem — pull, execute and publish results.

Capacity is the whole sweep: a distributed queue wants every job
visible to every worker immediately (a bounded window would make the
engine's poll latency the scheduler).  The trade-off is that
dominance pruning only retires corners *not yet claimed* — via
:meth:`cancel_pending` on goal early-exit — rather than at dispatch
time.

Fault tolerance is inherited from the broker's leases: every
``collect`` poll calls ``requeue_expired``, so even if no other
worker is scanning, the engine itself recovers jobs whose worker
died.  When the queue sits unclaimed with no live worker heartbeats,
``collect`` raises a warning through *on_stall* (default: a stderr
note) instead of wedging silently — the sweep still waits, because a
worker may join at any moment; that patience is the service model.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from repro.dse.broker import DEFAULT_LEASE_TTL, JobBroker
from repro.dse.exec.base import Executor, Token, failure_outcome
from repro.spark import SynthesisJob, SynthesisOutcome

#: Seconds of an unclaimed, workerless queue before the first stall
#: warning (repeated with backoff).
STALL_WARN_AFTER = 10.0


def _default_stall_warning(message: str) -> None:
    print(f"repro dse: {message}", file=sys.stderr)


class BrokerExecutor(Executor):
    """Publish jobs to a broker directory; collect results by polling.

    Parameters
    ----------
    broker:
        a :class:`JobBroker`, or a broker directory path.
    lease_ttl:
        heartbeat expiry when a path (rather than a broker) is given.
    poll:
        seconds between result-directory scans.
    on_stall:
        callback for "queue is waiting and no workers are alive"
        warnings; None silences them.
    """

    kind = "broker"

    def __init__(
        self,
        broker: Union[JobBroker, str, Path],
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll: float = 0.2,
        on_stall: Optional[Callable[[str], None]] = _default_stall_warning,
    ) -> None:
        if isinstance(broker, JobBroker):
            self.broker = broker
        else:
            self.broker = JobBroker(broker, lease_ttl=lease_ttl)
        self.poll = poll
        self.on_stall = on_stall
        self.capacity = 1  # widened by open() to the whole sweep
        #: Keyed by broker job id for singles, member id for batch
        #: members — both kinds settle through per-id result files.
        self._pending: Dict[str, Tuple[Token, SynthesisJob]] = {}
        #: Batch id -> its member ids, and the reverse map.
        self._batches: Dict[str, List[str]] = {}
        self._member_batch: Dict[str, str] = {}
        #: Members settled in bulk (whole-batch error fallback), not
        #: yet handed to the engine.
        self._ready: Deque[Tuple[Token, SynthesisOutcome]] = deque()
        self._draining = False
        self._cancelled: List[Token] = []
        self._last_result = time.monotonic()
        self._next_warn = STALL_WARN_AFTER

    def open(self, job_count: int) -> None:
        self.capacity = max(1, job_count)
        # Per-sweep state starts clean (instances may be reused, even
        # after an aborted sweep): withdraw anything a previous sweep
        # left queued so stale tokens never surface here.
        for job_id in list(self._pending):
            if job_id not in self._member_batch:
                self.broker.cancel(job_id)
        for batch_id in self._batches:
            self.broker.cancel(batch_id)
        self._pending.clear()
        self._batches.clear()
        self._member_batch.clear()
        self._ready.clear()
        self._draining = False
        self._cancelled = []
        self._last_result = time.monotonic()
        self._next_warn = STALL_WARN_AFTER

    def submit(self, token: Token, job: SynthesisJob) -> None:
        job_id = self.broker.submit(job, key=token[1])
        self._pending[job_id] = (token, job)

    def submit_batch(
        self, entries: List[Tuple[Token, SynthesisJob]]
    ) -> None:
        entries = list(entries)
        if len(entries) == 1:
            self.submit(*entries[0])
            return
        batch_id, member_ids = self.broker.submit_batch(
            [(job, token[1]) for token, job in entries]
        )
        self._batches[batch_id] = member_ids
        for member_id, entry in zip(member_ids, entries):
            self._pending[member_id] = entry
            self._member_batch[member_id] = batch_id

    @property
    def outstanding(self) -> int:
        return len(self._pending) + len(self._ready)

    def collect(self) -> Optional[Tuple[Token, SynthesisOutcome]]:
        while self._pending or self._ready:
            if self._ready:
                return self._ready.popleft()
            # One directory scan per poll, not one stat per pending
            # job: a big sweep over a network filesystem would
            # otherwise pay O(pending) round-trips every poll.
            ready = {
                path.stem
                for path in self.broker.results_dir.glob("*.json")
                if not path.name.startswith(".")
            }
            for job_id in list(self._pending):
                if job_id not in ready:
                    continue
                outcome = self.broker.take_result(job_id)
                if outcome is None:  # consumed by a crash-cleanup race
                    continue
                token, job = self._pending.pop(job_id)
                self._member_batch.pop(job_id, None)
                if not outcome.label:
                    outcome.label = job.label
                self._last_result = time.monotonic()
                self._next_warn = STALL_WARN_AFTER
                return token, outcome
            settled = self._settle_batch_errors(ready)
            if settled is not None:
                return settled
            # Recovery + diagnostics between scans: requeue leases that
            # stopped beating, and surface a workerless stall.
            self.broker.requeue_expired()
            if self._draining:
                # A requeued job (its worker died after the first
                # cancellation pass) is unclaimed again — withdraw it
                # rather than wait for a worker that may never come.
                self._withdraw_unclaimed()
            self._maybe_warn()
            time.sleep(self.poll)
        return None  # drained: everything left was withdrawn

    def _settle_batch_errors(
        self, ready: set
    ) -> Optional[Tuple[Token, SynthesisOutcome]]:
        """A result filed under a raw *batch* id is the worker's
        whole-batch error report (it could not parse the batch
        record): settle every still-pending member with that error.
        Also drops bookkeeping for batches whose members all settled
        individually."""
        for batch_id in list(self._batches):
            member_ids = self._batches[batch_id]
            if not any(mid in self._pending for mid in member_ids):
                del self._batches[batch_id]
                continue
            if batch_id not in ready:
                continue
            outcome = self.broker.take_result(batch_id)
            if outcome is None:
                continue
            del self._batches[batch_id]
            for member_id in member_ids:
                entry = self._pending.pop(member_id, None)
                self._member_batch.pop(member_id, None)
                if entry is None:
                    continue
                token, job = entry
                self._ready.append(
                    (
                        token,
                        failure_outcome(
                            job, outcome.error or "batch claim failed"
                        ),
                    )
                )
            if self._ready:
                self._last_result = time.monotonic()
                self._next_warn = STALL_WARN_AFTER
                return self._ready.popleft()
        return None

    def _maybe_warn(self) -> None:
        if self.on_stall is None:
            return
        waited = time.monotonic() - self._last_result
        if waited < self._next_warn:
            return
        if self.broker.live_workers() > 0:
            # Healthy wait on a busy worker: re-check a beat later
            # WITHOUT escalating the backoff, so a worker crash during
            # a long job is still reported promptly.
            self._next_warn = waited + STALL_WARN_AFTER
            return
        self.on_stall(
            f"{len(self._pending)} job(s) waiting in "
            f"{self.broker.root} with no live worker for "
            f"{waited:.0f}s — start one with: repro dse-worker "
            f"--broker-dir {self.broker.root}"
        )
        self._next_warn = max(self._next_warn * 2, waited + STALL_WARN_AFTER)

    def close(self) -> None:
        """Withdraw whatever is still queued: an aborted sweep
        (exception, Ctrl-C) must not leave job files behind for
        service workers to burn machine time on — only the departed
        engine could have consumed their results."""
        self._withdraw_unclaimed()
        self._pending.clear()
        self._batches.clear()
        self._member_batch.clear()
        self._ready.clear()

    def _withdraw_unclaimed(self) -> None:
        for job_id in list(self._pending):
            if job_id in self._member_batch:
                continue  # withdrawn per batch record below
            if self.broker.cancel(job_id):
                token, _job = self._pending.pop(job_id)
                self._cancelled.append(token)
        for batch_id in list(self._batches):
            if not self.broker.cancel(batch_id):
                continue  # claimed (or already finished): collect it
            # The withdrawn record held only still-unexecuted corners:
            # a member whose result already landed (published before a
            # crash requeued the tail) stays pending for collection.
            for member_id in self._batches.pop(batch_id):
                if member_id not in self._pending:
                    continue
                if (
                    self.broker.results_dir / f"{member_id}.json"
                ).exists():
                    continue
                token, _job = self._pending.pop(member_id)
                self._member_batch.pop(member_id, None)
                self._cancelled.append(token)

    def cancel_pending(self) -> List[Token]:
        """Withdraw every still-unclaimed job (goal early-exit) and
        switch to draining mode, where ``collect`` keeps withdrawing
        jobs that become unclaimed again (requeued after a worker
        death).  Jobs a worker holds stay out and will be collected."""
        self._draining = True
        self._withdraw_unclaimed()
        cancelled = self._cancelled
        self._cancelled = []
        return cancelled
