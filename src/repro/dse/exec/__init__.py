"""Pluggable execution backends for the exploration engine.

Three executors implement one submit/collect protocol
(:class:`~repro.dse.exec.base.Executor`):

* :class:`SerialExecutor` — in-process, one job at a time;
* :class:`PoolExecutor` — a bounded ``apply_async`` window over an
  explicit-context ``multiprocessing.Pool``, with dead-worker
  detection so a SIGKILLed worker fails its job instead of hanging
  the sweep;
* :class:`BrokerExecutor` — publishes jobs to a filesystem
  :class:`~repro.dse.broker.JobBroker` that any machine sharing the
  directory can serve via ``repro dse-worker``; machine loss is
  survived by heartbeat-lease expiry and requeue.

:func:`make_executor` maps the CLI spelling (``auto``/``serial``/
``pool``/``broker``) to an instance.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.dse.broker import DEFAULT_LEASE_TTL, JobBroker
from repro.dse.exec.base import Executor, Token, failure_outcome
from repro.dse.exec.broker_exec import BrokerExecutor
from repro.dse.exec.pool import (
    START_METHOD_ENV_VAR,
    PoolExecutor,
    default_start_method,
)
from repro.dse.exec.serial import SerialExecutor

#: CLI spellings accepted by :func:`make_executor`.
EXECUTOR_KINDS = ("auto", "serial", "pool", "broker")


def make_executor(
    kind: str = "auto",
    workers: int = 1,
    job_count: Optional[int] = None,
    broker_dir: Union[str, Path, None] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    start_method: Optional[str] = None,
) -> Executor:
    """Build the executor *kind* names.

    ``auto`` picks :class:`SerialExecutor` for ``workers == 1`` (or a
    sweep of at most one miss) and :class:`PoolExecutor` otherwise —
    the historical engine behavior.  ``broker`` requires *broker_dir*.
    """
    if kind == "auto":
        parallel = workers > 1 and (job_count is None or job_count > 1)
        kind = "pool" if parallel else "serial"
    if kind == "serial":
        return SerialExecutor()
    if kind == "pool":
        return PoolExecutor(workers=workers, start_method=start_method)
    if kind == "broker":
        if broker_dir is None:
            raise ValueError("broker executor needs a broker directory")
        return BrokerExecutor(JobBroker(broker_dir, lease_ttl=lease_ttl))
    raise ValueError(
        f"unknown executor {kind!r}; expected one of "
        f"{', '.join(EXECUTOR_KINDS)}"
    )


__all__ = [
    "BrokerExecutor",
    "EXECUTOR_KINDS",
    "Executor",
    "PoolExecutor",
    "START_METHOD_ENV_VAR",
    "SerialExecutor",
    "Token",
    "default_start_method",
    "failure_outcome",
    "make_executor",
]
