"""Parameter grids: the design space the engine explores.

Spark is a *scripted* system — "the designer may specify which loops
to unroll and by how much" (paper Section 4) — so a design space here
is the cartesian product of script knobs.  A :class:`ParameterGrid`
holds named axes; each grid point maps deterministically to a
:class:`~repro.transforms.base.SynthesisScript` via
:func:`script_for_point` and to a picklable
:class:`~repro.spark.SynthesisJob` via :func:`jobs_from_grid`.

Axis syntax (used both programmatically and by ``repro dse --vary``):

==============  ==========================================  ==========
axis            values                                      example
==============  ==========================================  ==========
``preset``      ``up`` / ``asic`` / ``none``                up,asic
``clock``       floats                                      4,6,1000
``unroll``      ``none`` or ``LOOP:FACTOR[;LOOP:FACTOR]``   none,*:2,*:0
``limits``      ``none`` or ``UNIT:COUNT[;UNIT:COUNT]``     alu:2;cmp:1
``speculation`` ``on`` / ``off``                            on,off
``code-motion`` ``on`` / ``off``                            on,off
``cse``         ``on`` / ``off``                            on,off
``tac``         ``on`` / ``off``                            on,off
``priority``    ``source`` / ``critical``                   source,critical
==============  ==========================================  ==========

Presets apply first; every other axis then overrides the preset's
field, so ``preset=up clock=4`` is the microprocessor script at a
4-unit clock.
"""

from __future__ import annotations

import copy
import itertools
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.scheduler.ready_list import PRIORITIES
from repro.spark import SynthesisJob
from repro.transforms.base import SYNTHESIS_STAGES, SynthesisScript

#: Axes understood by :func:`script_for_point`, in application order.
KNOWN_AXES = (
    "preset",
    "clock",
    "unroll",
    "limits",
    "speculation",
    "code-motion",
    "cse",
    "tac",
    "priority",
)

#: The *earliest* synthesis stage each axis can affect — the stage
#: from which corners differing only on that axis diverge.  Everything
#: before it is shared and served by the stage cache: a sweep varying
#: only ``clock``/``limits``/``priority`` (all schedule-stage axes)
#: re-parses and re-transforms nothing.  ``preset`` swaps whole
#: scripts (transform knobs included), so it classifies as transform
#: even though it changes the clock too.
AXIS_STAGES = {
    "preset": "transform",
    "clock": "schedule",
    "unroll": "transform",
    "limits": "schedule",
    "speculation": "transform",
    "code-motion": "transform",
    "cse": "transform",
    "tac": "transform",
    "priority": "schedule",
}

_FLAG_FIELDS = {
    "speculation": "enable_speculation",
    "code-motion": "enable_code_motion",
    "cse": "enable_cse",
    "tac": "enable_tac_lowering",
}


class GridError(ValueError):
    """Raised for malformed axis specs or unknown axis names."""


@dataclass(frozen=True)
class GridPoint:
    """One coordinate in the design space: ordered (axis, value)."""

    values: Tuple[Tuple[str, object], ...]

    def as_dict(self) -> Dict[str, object]:
        return dict(self.values)

    @property
    def label(self) -> str:
        return " ".join(
            f"{name}={_render_value(name, value)}"
            for name, value in self.values
        )


class ParameterGrid:
    """An ordered set of named axes and their cartesian product."""

    def __init__(self, axes: Sequence[Tuple[str, Sequence[object]]]) -> None:
        self.axes: List[Tuple[str, List[object]]] = []
        for name, values in axes:
            if name not in KNOWN_AXES:
                raise GridError(
                    f"unknown grid axis {name!r}; known axes: "
                    f"{', '.join(KNOWN_AXES)}"
                )
            if any(name == existing for existing, _ in self.axes):
                raise GridError(
                    f"duplicate grid axis {name!r}; merge its values "
                    f"into one spec (e.g. {name}=V1,V2)"
                )
            values = list(values)
            if not values:
                raise GridError(f"axis {name!r} has no values")
            self.axes.append((name, values))

    def __len__(self) -> int:
        count = 1
        for _, values in self.axes:
            count *= len(values)
        return count

    def points(self) -> List[GridPoint]:
        """Every grid point, in deterministic row-major order."""
        if not self.axes:
            return [GridPoint(values=())]
        names = [name for name, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        return [
            GridPoint(values=tuple(zip(names, combo)))
            for combo in itertools.product(*value_lists)
        ]


# ---------------------------------------------------------------------------
# Axis value parsing (CLI --vary syntax)
# ---------------------------------------------------------------------------


def _parse_mapping(text: str, what: str) -> Dict[str, int]:
    """``a:1;b:2`` -> {"a": 1, "b": 2}; ``none`` -> {}."""
    if text == "none":
        return {}
    mapping: Dict[str, int] = {}
    for part in text.split(";"):
        name, sep, value = part.partition(":")
        if not sep or not name:
            raise GridError(
                f"bad {what} value {part!r}; expected NAME:COUNT"
            )
        try:
            mapping[name] = int(value)
        except ValueError:
            raise GridError(
                f"bad {what} count {value!r} in {part!r}"
            ) from None
    return mapping


def _parse_flag(text: str, axis: str) -> bool:
    if text in ("on", "true", "1"):
        return True
    if text in ("off", "false", "0"):
        return False
    raise GridError(f"bad {axis} value {text!r}; expected on/off")


def parse_axis_value(axis: str, text: str) -> object:
    """Parse one textual axis value into its typed form."""
    text = text.strip()
    if axis == "preset":
        if text not in ("up", "asic", "none"):
            raise GridError(
                f"bad preset {text!r}; expected up, asic or none"
            )
        return text
    if axis == "clock":
        try:
            value = float(text)
        except ValueError:
            raise GridError(f"bad clock value {text!r}") from None
        # A clock period must be a usable number: label rendering and
        # latency math both break on inf/nan, and a non-positive clock
        # can never fit an operation.
        if not math.isfinite(value) or value <= 0:
            raise GridError(
                f"bad clock value {text!r}; expected a finite positive "
                f"number"
            )
        return value
    if axis == "unroll":
        return _parse_mapping(text, "unroll spec")
    if axis == "limits":
        return _parse_mapping(text, "resource limit")
    if axis in _FLAG_FIELDS:
        return _parse_flag(text, axis)
    if axis == "priority":
        if text not in PRIORITIES:
            raise GridError(
                f"bad priority {text!r}; expected one of {PRIORITIES}"
            )
        return text
    raise GridError(
        f"unknown grid axis {axis!r}; known axes: {', '.join(KNOWN_AXES)}"
    )


def parse_vary_spec(spec: str) -> Tuple[str, List[object]]:
    """Parse one ``--vary AXIS=V1,V2,...`` argument."""
    axis, sep, rest = spec.partition("=")
    axis = axis.strip()
    if not sep or not rest.strip():
        raise GridError(
            f"bad --vary spec {spec!r}; expected AXIS=VALUE[,VALUE...]"
        )
    values = [parse_axis_value(axis, value) for value in rest.split(",")]
    return axis, values


def grid_from_specs(specs: Sequence[str]) -> ParameterGrid:
    """Build a grid from repeated ``--vary`` arguments."""
    return ParameterGrid([parse_vary_spec(spec) for spec in specs])


# ---------------------------------------------------------------------------
# Axis -> stage classification
# ---------------------------------------------------------------------------


def stage_for_axis(axis: str) -> str:
    """The earliest stage *axis* can affect (see :data:`AXIS_STAGES`)."""
    try:
        return AXIS_STAGES[axis]
    except KeyError:
        raise GridError(
            f"unknown grid axis {axis!r}; known axes: "
            f"{', '.join(KNOWN_AXES)}"
        ) from None


def varied_stages(grid: ParameterGrid) -> List[str]:
    """The stages at which this grid's corners actually diverge, in
    stage order — only axes with more than one value count (a pinned
    axis produces identical prefixes everywhere)."""
    stages = {
        stage_for_axis(name)
        for name, values in grid.axes
        if len(values) > 1
    }
    return [stage for stage in SYNTHESIS_STAGES if stage in stages]


def shared_stages(grid: ParameterGrid) -> List[str]:
    """The stage prefix every corner of *grid* has in common: all
    stages strictly before the earliest varied one.  With a warm
    stage cache these execute exactly once for the whole sweep."""
    varied = varied_stages(grid)
    if not varied:
        return list(SYNTHESIS_STAGES)
    return list(SYNTHESIS_STAGES[: SYNTHESIS_STAGES.index(varied[0])])


# ---------------------------------------------------------------------------
# Neighborhoods and mutation (the search strategies' move set)
# ---------------------------------------------------------------------------

#: Axes whose candidate values have a natural total order, so a search
#: step moves to an *adjacent* value instead of teleporting across the
#: axis.  Everything else (unroll maps, resource allocations, flags,
#: presets, priorities) is categorical: every other candidate is a
#: neighbor.
ORDERED_AXES = ("clock",)


def axis_neighbor_values(
    axis: str, value: object, values: Sequence[object]
) -> List[object]:
    """The candidate values one mutation step away from *value*.

    For ordered axes the neighbors are the adjacent entries of the
    value-sorted candidate list (a beam step nudges the clock one
    notch); for categorical axes every other candidate is a neighbor.
    A *value* not among the candidates neighbors every candidate —
    search may start from a base script outside the declared space.
    """
    candidates = list(values)
    position = next(
        (i for i, v in enumerate(candidates) if v == value), None
    )
    if position is None:
        return candidates
    if axis in ORDERED_AXES:
        by_value = sorted(range(len(candidates)), key=lambda i: candidates[i])
        at = by_value.index(position)
        neighbors = []
        if at > 0:
            neighbors.append(candidates[by_value[at - 1]])
        if at < len(by_value) - 1:
            neighbors.append(candidates[by_value[at + 1]])
        return neighbors
    return [v for i, v in enumerate(candidates) if i != position]


def mutate_point(point: GridPoint, axis: str, value: object) -> GridPoint:
    """*point* with exactly one axis rebound to *value* (axis order —
    and therefore label and cache-key structure — preserved)."""
    if axis not in point.as_dict():
        raise GridError(
            f"cannot mutate axis {axis!r}: point has axes "
            f"{[name for name, _ in point.values]}"
        )
    return GridPoint(
        values=tuple(
            (name, value if name == axis else existing)
            for name, existing in point.values
        )
    )


def axes_late_first(grid: ParameterGrid) -> List[str]:
    """The grid's *mutable* axes (more than one candidate value),
    ordered latest-affected-stage first; ties keep grid order.

    This is the search strategies' mutation preference: mutating a
    schedule-stage axis (clock, limits, priority) first keeps the
    transform prefix shared with the parent corner, so sibling
    proposals recall the parent's frontend/transform snapshots from
    the stage cache instead of recomputing them."""
    stage_order = {stage: i for i, stage in enumerate(SYNTHESIS_STAGES)}
    mutable = [name for name, values in grid.axes if len(values) > 1]
    return sorted(
        mutable, key=lambda name: -stage_order[stage_for_axis(name)]
    )


def random_point(grid: ParameterGrid, rng: random.Random) -> GridPoint:
    """A uniform random coordinate of *grid*, drawn axis by axis from
    the caller's seeded generator (the sole source of randomness, so
    seeded searches replay bit-identically)."""
    return GridPoint(
        values=tuple(
            (name, rng.choice(values)) for name, values in grid.axes
        )
    )


def first_point(grid: ParameterGrid) -> GridPoint:
    """The grid's origin corner (every axis at its first declared
    value) — the deterministic anchor seed of every search strategy."""
    return GridPoint(
        values=tuple((name, values[0]) for name, values in grid.axes)
    )


def _render_value(axis: str, value: object) -> str:
    if isinstance(value, dict):
        if not value:
            return "none"
        return ";".join(f"{k}:{v}" for k, v in sorted(value.items()))
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, float) and math.isfinite(value) and value == int(value):
        return str(int(value))
    return str(value)


# ---------------------------------------------------------------------------
# Point -> script -> job
# ---------------------------------------------------------------------------


def script_for_point(
    point: GridPoint, base: Optional[SynthesisScript] = None
) -> SynthesisScript:
    """The synthesis script a grid point denotes.

    The preset axis (when present) picks the starting script; the base
    script's pure functions and output scalars always carry over since
    they describe the *design*, not the point.  Every other axis then
    overrides its field.
    """
    values = point.as_dict()
    base = base or SynthesisScript()
    preset = values.get("preset")
    if preset == "up":
        script = SynthesisScript.microprocessor_block(
            pure_functions=set(base.pure_functions)
        )
    elif preset == "asic":
        script = SynthesisScript.asic()
        script.pure_functions = set(base.pure_functions)
    else:
        script = copy.deepcopy(base)
    script.output_scalars = set(base.output_scalars)

    if "clock" in values:
        script.clock_period = float(values["clock"])  # type: ignore[arg-type]
    if "unroll" in values:
        script.unroll_loops = dict(values["unroll"])  # type: ignore[arg-type]
    if "limits" in values:
        script.resource_limits = dict(values["limits"])  # type: ignore[arg-type]
    for axis, field_name in _FLAG_FIELDS.items():
        if axis in values:
            setattr(script, field_name, bool(values[axis]))
    if "priority" in values:
        script.scheduler_priority = str(values["priority"])
    return script


def job_from_point(
    source: str,
    point: GridPoint,
    base_script: Optional[SynthesisScript] = None,
    entity: str = "design",
    environment: str = "",
    environment_args: Tuple = (),
    inputs: Optional[Dict[str, int]] = None,
    array_inputs: Optional[Dict[str, List[int]]] = None,
    measure: bool = False,
    emit: bool = False,
) -> SynthesisJob:
    """One picklable job for one design-space coordinate, labelled by
    the point — the factory both grid expansion and the search
    strategies go through, so a searched corner and the identical grid
    corner hash to the same cache key."""
    return SynthesisJob(
        source=source,
        script=script_for_point(point, base_script),
        entity=entity,
        label=point.label,
        environment=environment,
        environment_args=tuple(environment_args),
        inputs=dict(inputs or {}),
        array_inputs={
            name: list(values)
            for name, values in (array_inputs or {}).items()
        },
        measure=measure,
        emit=emit,
    )


def jobs_from_grid(
    source: str,
    grid: ParameterGrid,
    base_script: Optional[SynthesisScript] = None,
    entity: str = "design",
    environment: str = "",
    environment_args: Tuple = (),
    inputs: Optional[Dict[str, int]] = None,
    array_inputs: Optional[Dict[str, List[int]]] = None,
    measure: bool = False,
    emit: bool = False,
) -> List[SynthesisJob]:
    """One picklable job per grid point, labelled by the point."""
    return [
        job_from_point(
            source,
            point,
            base_script=base_script,
            entity=entity,
            environment=environment,
            environment_args=environment_args,
            inputs=inputs,
            array_inputs=array_inputs,
            measure=measure,
            emit=emit,
        )
        for point in grid.points()
    ]
