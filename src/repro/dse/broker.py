"""A filesystem job broker: lease-based distribution of synthesis jobs.

Any machine that can see one shared directory can execute sweep jobs.
The broker needs no daemon and no sockets — coordination rides on the
same two filesystem primitives the shared outcome cache already
trusts: atomic ``rename`` (claims, requeues) and atomic
temp-file-then-``replace`` writes (job files, leases, results).

Layout under the broker root (by default ``<cache>/broker``)::

    queue/<job_id>.json      submitted, unclaimed job descriptions
    claimed/<job_id>.json    jobs some worker is executing
    leases/<job_id>.json     the claimant's heartbeat (mtime = alive)
    results/<job_id>.json    finished outcomes, consumed by the engine
    workers/<worker>.json    worker liveness heartbeats (diagnostics)

The life of a job:

1. the engine ``submit``\\ s it into ``queue/``;
2. a worker ``claim``\\ s it — an ``os.rename`` into ``claimed/`` that
   exactly one contender can win — writes a lease, and heartbeats the
   lease from a background thread while ``execute_job`` runs;
3. ``complete`` writes the outcome into ``results/`` and retires the
   claimed file and lease;
4. the engine polls ``results/`` and consumes its outcomes.

**Machine loss is survivable by lease expiry**: a worker that dies
(SIGKILL, OOM, power loss) stops heartbeating, so any party scanning
the broker — another worker looking for work, or the engine polling
for results — sees the stale lease and ``requeue``\\ s the job with one
atomic rename back into ``queue/``.  At most one requeuer can win the
rename, so a job is never duplicated by the recovery path itself.  The
only deliberate double-execution window (a worker wrongly presumed
dead, e.g. paused longer than the lease TTL) is harmless: results are
written by atomic replace and outcome caching is keyed by job content,
so the outcome lands exactly once no matter how many workers finish.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.spark import (
    ERROR_KIND_ENVIRONMENT,
    SynthesisJob,
    SynthesisOutcome,
    execute_job,
    execute_job_batch,
)

#: Wire-format version of the queue/result records.  Version 2 adds
#: multi-job *batch* records: one queue file whose ``"batch"`` list
#: carries several prefix-sharing jobs, claimed and leased as a unit
#: but completed (and crash-recovered) per member.  Single-job records
#: keep the version-1 shape (a ``"job"`` key); readers dispatch on the
#: keys, so either kind round-trips through a mixed-version broker —
#: ``SynthesisJob.from_dict`` already ignores unknown fields.
BROKER_FORMAT = 2

#: Default seconds without a heartbeat before a claim is presumed dead.
DEFAULT_LEASE_TTL = 30.0

#: Results nobody consumed within this horizon (their sweep was killed,
#: or a duplicate execution finished after the first result was taken)
#: are swept — engines poll sub-second, so an hour-old result file is
#: certainly abandoned.
STALE_RESULT_SECONDS = 3600.0

#: Subdirectory of the shared cache that hosts the broker by default.
BROKER_DIR_NAME = "broker"

#: Half-open bound on the priority values encoded into queue file
#: names; priorities outside ``(-PRIORITY_SPAN, PRIORITY_SPAN)`` clamp.
PRIORITY_SPAN = 5_000_000


def _priority_rank(priority: int) -> int:
    """Map a job priority to the zero-padded numeric prefix of its
    queue file name, so the plain lexicographic claim scan drains
    higher-priority jobs first (rank ascends as priority descends) and
    breaks ties in submission order.  Encoding the rank in the *name*
    keeps claiming one sorted glob — no reading every queue file to
    decide which to take."""
    clamped = max(-(PRIORITY_SPAN - 1), min(int(priority), PRIORITY_SPAN - 1))
    return PRIORITY_SPAN - clamped


def default_worker_id() -> str:
    """A human-traceable unique worker name: host, pid, random tail."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@dataclass
class BatchMember:
    """One corner of a claimed batch record."""

    member_id: str
    key: str
    job: Optional[SynthesisJob]
    #: Set when this member's entry could not be parsed; the worker
    #: settles the member with this error instead of executing.
    error: str = ""


@dataclass
class BrokerClaim:
    """One successfully claimed unit of work, as held by a worker: a
    single job (``job`` set) or a batch (``members`` set)."""

    job_id: str
    key: str
    job: Optional[SynthesisJob]
    worker: str
    #: Set when the job file could not be parsed; the worker settles
    #: the job with this error instead of executing.
    error: str = ""
    #: The still-unfinished corners of a batch record; ``None`` for
    #: single-job claims.
    members: Optional[List[BatchMember]] = None


@dataclass
class BrokerStats:
    """A point-in-time census of the broker directory."""

    root: Path
    queued: int
    claimed: int
    results: int
    live_workers: int

    def describe(self) -> str:
        return (
            f"broker {self.root}: {self.queued} queued, "
            f"{self.claimed} claimed, {self.results} unconsumed "
            f"result(s), {self.live_workers} live worker(s)"
        )


class JobBroker:
    """One broker directory: submit, claim, heartbeat, complete,
    requeue.  Safe for any number of concurrent engines and workers
    across machines sharing the filesystem."""

    def __init__(
        self,
        root: Union[str, Path],
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        self.root = Path(root)
        self.lease_ttl = lease_ttl
        self.queue_dir = self.root / "queue"
        self.claimed_dir = self.root / "claimed"
        self.leases_dir = self.root / "leases"
        self.results_dir = self.root / "results"
        self.workers_dir = self.root / "workers"
        self.tmp_dir = self.root / "tmp"
        for directory in (
            self.queue_dir,
            self.claimed_dir,
            self.leases_dir,
            self.results_dir,
            self.workers_dir,
            self.tmp_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        self._seq = 0
        #: Lease-less claims under observation: job_id -> first seen.
        #: Requeueing a claim with no lease waits out a grace period so
        #: the claimer's in-flight lease write (microseconds after the
        #: claiming rename) is never mistaken for a crash.
        self._suspects: dict = {}
        self._suspect_grace = min(1.0, lease_ttl / 4.0)
        #: Recovery scans are throttled per participant: expiry can
        #: only change on a TTL timescale, so re-globbing the broker
        #: directories on every sub-second claim/result poll would be
        #: pure metadata traffic (painful over NFS).
        self._recovery_interval = min(1.0, lease_ttl / 4.0)
        self._last_recovery = float("-inf")  # first scan always runs

    # -- atomic JSON plumbing ------------------------------------------------

    def _write_json(self, path: Path, payload: dict) -> None:
        # Temp files live in their own directory, never next to the
        # target: pathlib's glob matches dot-prefixed names, so an
        # in-flight ``.tmp-*`` in ``queue/`` could be claimed (renamed
        # away) before the replace lands.  Same filesystem, so the
        # replace stays atomic.
        temp = self.tmp_dir / f".tmp-{uuid.uuid4().hex[:8]}-{path.name}"
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(temp, path)

    @staticmethod
    def _read_json(path: Path) -> Optional[dict]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # -- submission (engine side) -------------------------------------------

    def submit(self, job: SynthesisJob, key: str = "") -> str:
        """Queue one job; returns its broker-unique id.

        The id leads with the job's priority rank, so the sorted claim
        scan serves higher-``job.priority`` work first — goal-directed
        sweeps can drain their most promising corners before the rest
        — with submission order breaking ties."""
        self._seq += 1
        job_id = (
            f"{_priority_rank(job.priority):07d}-{os.getpid():08x}"
            f"-{self._seq:06d}-{uuid.uuid4().hex[:8]}"
        )
        self._write_json(
            self.queue_dir / f"{job_id}.json",
            {
                "format": BROKER_FORMAT,
                "id": job_id,
                "key": key,
                "label": job.label,
                "priority": job.priority,
                "job": job.to_dict(),
                "submitted_at": time.time(),
            },
        )
        return job_id

    def submit_batch(
        self, jobs_with_keys: List[Tuple[SynthesisJob, str]]
    ) -> Tuple[str, List[str]]:
        """Queue several prefix-sharing jobs as **one** multi-job
        record (wire format 2), claimed by a single worker as a unit
        so it can load their shared stage snapshot once.

        Returns ``(batch_id, member_ids)``.  Each member's result is
        published under its own ``member_id`` the moment it finishes
        (``complete_member``), so the engine consumes per-corner
        results exactly as with single-job submissions — and a worker
        dying mid-batch forfeits only the unfinished tail, which lease
        expiry requeues as a shrunken batch record.

        The record's claim rank is the *highest* member priority: a
        batch is claimed as early as its most urgent corner.
        """
        entries = list(jobs_with_keys)
        if not entries:
            raise ValueError("submit_batch needs at least one job")
        self._seq += 1
        rank = _priority_rank(max(job.priority for job, _key in entries))
        batch_id = (
            f"{rank:07d}-{os.getpid():08x}"
            f"-{self._seq:06d}-{uuid.uuid4().hex[:8]}"
        )
        member_ids = [
            f"{batch_id}.{index:03d}" for index in range(len(entries))
        ]
        self._write_json(
            self.queue_dir / f"{batch_id}.json",
            {
                "format": BROKER_FORMAT,
                "id": batch_id,
                "batch": [
                    {
                        "id": member_id,
                        "key": key,
                        "label": job.label,
                        "priority": job.priority,
                        "job": job.to_dict(),
                    }
                    for member_id, (job, key) in zip(member_ids, entries)
                ],
                "submitted_at": time.time(),
            },
        )
        return batch_id, member_ids

    def cancel(self, job_id: str) -> bool:
        """Withdraw a still-unclaimed job; False when some worker beat
        the cancellation to it (it will execute and produce a result)."""
        try:
            os.unlink(self.queue_dir / f"{job_id}.json")
            return True
        except OSError:
            return False

    def take_result(self, job_id: str) -> Optional[SynthesisOutcome]:
        """Consume (read **and remove**) the result for *job_id*, or
        None while it is still pending.  An unreadable result file is
        consumed as an environment failure so a sweep can never hang
        on one corrupt record."""
        path = self.results_dir / f"{job_id}.json"
        # The read and the existence check race the worker's atomic
        # os.replace: a file that appears between them must be re-read,
        # not condemned — results are complete the moment they exist.
        record = None
        for _attempt in range(2):
            record = self._read_json(path)
            if record is not None:
                break
            if not path.exists():
                return None
        if record is None:
            outcome = SynthesisOutcome(
                ok=False,
                error=f"unreadable broker result {path.name}",
                error_kind=ERROR_KIND_ENVIRONMENT,
            )
        else:
            try:
                outcome = SynthesisOutcome.from_dict(record["outcome"])
            except (KeyError, TypeError, ValueError):
                outcome = SynthesisOutcome(
                    ok=False,
                    error=f"malformed broker result {path.name}",
                    error_kind=ERROR_KIND_ENVIRONMENT,
                )
        try:
            os.unlink(path)
        except OSError:
            pass
        return outcome

    # -- claiming (worker side) ---------------------------------------------

    def claim(self, worker: str) -> Optional[BrokerClaim]:
        """Claim the best available job — highest priority first, then
        submission order (both encoded in the queue file name, so the
        sorted scan needs no file reads) — or None when the queue is
        empty.  Claiming is one atomic rename, so two workers can
        never hold the same job; expired leases are requeued first so
        a worker always sees recovered work too."""
        self.requeue_expired()
        for path in sorted(self.queue_dir.glob("*.json")):
            if path.name.startswith("."):
                continue
            job_id = path.stem
            target = self.claimed_dir / path.name
            try:
                os.rename(path, target)
            except OSError:  # lost the race for this one; try the next
                continue
            # Stamp claim time straight away: the rename preserves the
            # submit-time mtime, and this mtime is the expiry fallback
            # while the lease write below is still in flight (see the
            # suspect grace period in requeue_expired).
            try:
                os.utime(target)
            except OSError:
                pass
            if (self.results_dir / path.name).exists():
                # A rare requeue/complete race can put a finished job
                # back in the queue; never execute it twice.
                try:
                    os.unlink(target)
                except OSError:
                    pass
                continue
            self._write_json(
                self.leases_dir / path.name,
                {
                    "worker": worker,
                    "pid": os.getpid(),
                    "claimed_at": time.time(),
                },
            )
            record = self._read_json(target)
            if record is not None and "batch" in record:
                batch_claim = self._claim_batch(job_id, target, record, worker)
                if batch_claim is None:
                    continue  # every member already finished
                return batch_claim
            if record is None or "job" not in record:
                return BrokerClaim(
                    job_id=job_id,
                    key="",
                    job=None,
                    worker=worker,
                    error=f"unreadable job file {path.name}",
                )
            try:
                job = SynthesisJob.from_dict(record["job"])
            except (KeyError, TypeError, ValueError) as error:
                return BrokerClaim(
                    job_id=job_id,
                    key=str(record.get("key", "")),
                    job=None,
                    worker=worker,
                    error=f"malformed job {path.name}: {error}",
                )
            return BrokerClaim(
                job_id=job_id,
                key=str(record.get("key", "")),
                job=job,
                worker=worker,
            )
        return None

    def _claim_batch(
        self,
        batch_id: str,
        target: Path,
        record: dict,
        worker: str,
    ) -> Optional[BrokerClaim]:
        """Turn a just-claimed batch record into a :class:`BrokerClaim`
        carrying its *still-unfinished* members.

        Members whose result file already exists are skipped — a batch
        requeued after a mid-flight crash must never re-run the
        corners the dead worker already published.  When every member
        turns out finished (a requeue/complete race) the claim is
        retired on the spot and ``None`` is returned so the scan moves
        on.  A structurally broken record (an entry with no usable id
        cannot have its result addressed) degrades to an error claim
        under the batch id; the engine's batch fallback settles every
        member from that one error result."""
        members: List[BatchMember] = []
        for entry in record.get("batch", []):
            if not isinstance(entry, dict) or not entry.get("id"):
                return BrokerClaim(
                    job_id=batch_id,
                    key="",
                    job=None,
                    worker=worker,
                    error=f"malformed batch record {target.name}",
                )
            member_id = str(entry["id"])
            if (self.results_dir / f"{member_id}.json").exists():
                continue  # finished before a crash requeued the batch
            key = str(entry.get("key", ""))
            try:
                job = SynthesisJob.from_dict(entry["job"])
            except (KeyError, TypeError, ValueError) as error:
                members.append(
                    BatchMember(
                        member_id=member_id,
                        key=key,
                        job=None,
                        error=f"malformed batch member {member_id}: {error}",
                    )
                )
                continue
            members.append(BatchMember(member_id=member_id, key=key, job=job))
        if not members:
            for path in (target, self.leases_dir / target.name):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            return None
        return BrokerClaim(
            job_id=batch_id,
            key="",
            job=None,
            worker=worker,
            members=members,
        )

    def heartbeat(self, claim: BrokerClaim) -> bool:
        """Refresh the claim's lease; False when the lease is gone or
        belongs to someone else — this worker was presumed dead, the
        job was requeued (and possibly re-claimed).  The ownership
        check matters: a suspended worker blindly utime-ing a
        usurper's lease would keep it fresh forever and mask the
        usurper's own death.  The presumed-dead worker may still
        finish and complete(): results are idempotent."""
        lease_path = self.leases_dir / f"{claim.job_id}.json"
        lease = self._read_json(lease_path)
        if lease is not None and lease.get("worker") not in ("", claim.worker):
            return False  # a new claimant owns this job now
        try:
            os.utime(lease_path)
            return True
        except OSError:
            return False

    def complete(self, claim: BrokerClaim, outcome: SynthesisOutcome) -> None:
        """Publish the outcome and retire the claim.

        The claim is only retired while this worker still holds the
        lease: a worker wrongly presumed dead (suspended past the TTL)
        may find its job requeued and re-claimed — tearing down the
        *new* claimant's files would leave that live execution
        untracked.  In that case only the (idempotent) result is
        published; the leftover claim state self-heals through
        ``requeue_expired``'s finished-job cleanup once its lease goes
        stale."""
        self._write_json(
            self.results_dir / f"{claim.job_id}.json",
            {
                "format": BROKER_FORMAT,
                "id": claim.job_id,
                "key": claim.key,
                "worker": claim.worker,
                "outcome": outcome.to_dict(),
                "completed_at": time.time(),
            },
        )
        lease_path = self.leases_dir / f"{claim.job_id}.json"
        lease = self._read_json(lease_path)
        if lease is not None and lease.get("worker") not in ("", claim.worker):
            return  # usurped: the job belongs to a new claimant now
        for path in (self.claimed_dir / f"{claim.job_id}.json", lease_path):
            try:
                os.unlink(path)
            except OSError:
                pass

    def complete_member(
        self,
        claim: BrokerClaim,
        member: BatchMember,
        outcome: SynthesisOutcome,
    ) -> None:
        """Publish one batch member's outcome the moment it finishes
        and shrink the claimed record to the still-unfinished tail, so
        a crash after this point can only requeue corners that never
        ran.  The whole claim retires when the last member lands.

        Same usurpation rule as :meth:`complete`: the (idempotent)
        result is always published, but the claimed record and lease
        are only touched while this worker still owns the lease.  A
        concurrent recovery racing the record rewrite is harmless
        either way — finished members are re-filtered against
        ``results/`` both at requeue and at the next claim."""
        self._write_json(
            self.results_dir / f"{member.member_id}.json",
            {
                "format": BROKER_FORMAT,
                "id": member.member_id,
                "key": member.key,
                "worker": claim.worker,
                "outcome": outcome.to_dict(),
                "completed_at": time.time(),
            },
        )
        lease_path = self.leases_dir / f"{claim.job_id}.json"
        lease = self._read_json(lease_path)
        if lease is not None and lease.get("worker") not in ("", claim.worker):
            return  # usurped: the batch belongs to a new claimant now
        claimed_path = self.claimed_dir / f"{claim.job_id}.json"
        record = self._read_json(claimed_path)
        if record is not None and "batch" in record:
            remaining = [
                entry
                for entry in record["batch"]
                if isinstance(entry, dict)
                and entry.get("id") != member.member_id
            ]
            if remaining:
                record["batch"] = remaining
                # The rewrite also refreshes the claimed file's mtime,
                # which is the lease-less expiry fallback — progress
                # within a batch keeps the claim visibly alive.
                self._write_json(claimed_path, record)
                return
        for path in (claimed_path, lease_path):
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- crash recovery ------------------------------------------------------

    def requeue_expired(self) -> List[str]:
        """Requeue every claimed job whose lease stopped beating more
        than ``lease_ttl`` seconds ago; returns the requeued ids.

        Any participant may call this (workers do on every claim, the
        engine on every result poll): the rename back into ``queue/``
        is atomic, so concurrent recovery never duplicates a job.
        Calls within a quarter TTL of this instance's previous scan
        are no-ops — leases only expire on a TTL timescale, so
        per-poll re-scans would buy nothing but directory traffic.
        """
        requeued: List[str] = []
        monotonic_now = time.monotonic()
        if monotonic_now - self._last_recovery < self._recovery_interval:
            return requeued
        self._last_recovery = monotonic_now
        now = time.time()
        seen: set = set()
        for claimed in self.claimed_dir.glob("*.json"):
            if claimed.name.startswith("."):
                continue
            job_id = claimed.stem
            seen.add(job_id)
            lease = self.leases_dir / claimed.name
            try:
                beat = lease.stat().st_mtime
                self._suspects.pop(job_id, None)
            except OSError:
                # No lease yet.  Almost always this is a claimer whose
                # lease write is microseconds behind its claiming
                # rename — only a claimant that died exactly in that
                # gap leaves the state permanently.  Observe the claim
                # across a grace period before trusting the fallback
                # age (the claimed file's mtime, stamped at claim
                # time but equal to the submit time if the claimer
                # died before even the utime landed).
                first_seen = self._suspects.setdefault(job_id, now)
                if now - first_seen < self._suspect_grace:
                    continue
                try:
                    beat = claimed.stat().st_mtime
                except OSError:
                    self._suspects.pop(job_id, None)
                    continue  # completed/requeued under us
            if now - beat <= self.lease_ttl:
                continue
            self._suspects.pop(job_id, None)
            record = self._read_json(claimed)
            if record is not None and "batch" in record:
                # A dead batch requeues only its *unfinished* corners:
                # members whose result already landed are dropped from
                # the record before it goes back to the queue, so they
                # can never run twice (and the next claimant re-filters
                # against results/ anyway, closing the race where a
                # result lands between this scan and the rename).
                remaining = [
                    entry
                    for entry in record["batch"]
                    if not (
                        isinstance(entry, dict)
                        and entry.get("id")
                        and (
                            self.results_dir / f"{entry['id']}.json"
                        ).exists()
                    )
                ]
                if not remaining:
                    # Every corner finished but the worker died before
                    # retiring the claim: just clean up, never re-run.
                    for path in (claimed, lease):
                        try:
                            os.unlink(path)
                        except OSError:
                            pass
                    continue
                if len(remaining) < len(record["batch"]):
                    record["batch"] = remaining
                    self._write_json(claimed, record)
            elif (self.results_dir / claimed.name).exists():
                # Finished but the worker died before retiring the
                # claim: just clean up, never re-run.
                for path in (claimed, lease):
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                continue
            # Drop the stale lease *before* the job becomes claimable
            # again: once renamed into queue/ a new worker may claim it
            # and write a fresh lease under the same name, which a
            # post-rename unlink would destroy (leaving the live claim
            # leaseless and re-expiring every TTL).  If we crash right
            # here, the claimed file's age re-triggers recovery.
            try:
                os.unlink(lease)
            except OSError:
                pass
            try:
                os.rename(claimed, self.queue_dir / claimed.name)
            except OSError:  # another recoverer won, or it completed
                continue
            requeued.append(job_id)
        # Suspects whose claimed file vanished (completed, requeued by
        # someone else) are no longer under observation.
        for job_id in list(self._suspects):
            if job_id not in seen:
                del self._suspects[job_id]
        self._sweep_orphans(now)
        return requeued

    def _sweep_orphans(self, now: float) -> None:
        """Housekeeping piggybacked on recovery scans: drop stale
        leases that reference no queued or claimed job (a contender
        that lost a claim race for a job that then finished), and
        results nobody consumed within :data:`STALE_RESULT_SECONDS`
        (their sweep died, or a duplicate execution landed after the
        first result was taken)."""
        for lease in self.leases_dir.glob("*.json"):
            try:
                stale = now - lease.stat().st_mtime > self.lease_ttl
            except OSError:
                continue
            if not stale:
                continue
            if (self.claimed_dir / lease.name).exists():
                continue  # the main recovery loop owns this case
            if (self.queue_dir / lease.name).exists():
                continue  # pre-claim lease of a requeued/queued job
            try:
                os.unlink(lease)
            except OSError:
                pass
        horizon = now - STALE_RESULT_SECONDS
        for result in self.results_dir.glob("*.json"):
            try:
                if result.stat().st_mtime < horizon:
                    os.unlink(result)
            except OSError:
                continue

    # -- worker liveness (diagnostics) --------------------------------------

    def worker_heartbeat(self, worker: str) -> None:
        path = self.workers_dir / f"{worker}.json"
        try:
            os.utime(path)
        except OSError:
            self._write_json(
                path,
                {"worker": worker, "pid": os.getpid(), "host": socket.gethostname()},
            )

    def retire_worker(self, worker: str) -> None:
        try:
            os.unlink(self.workers_dir / f"{worker}.json")
        except OSError:
            pass

    def live_workers(self) -> int:
        """Workers whose liveness heartbeat is within the lease TTL."""
        horizon = time.time() - self.lease_ttl
        count = 0
        for path in self.workers_dir.glob("*.json"):
            try:
                if path.stat().st_mtime >= horizon:
                    count += 1
            except OSError:
                continue
        return count

    def stats(self) -> BrokerStats:
        return BrokerStats(
            root=self.root,
            queued=sum(1 for _ in self.queue_dir.glob("*.json")),
            claimed=sum(1 for _ in self.claimed_dir.glob("*.json")),
            results=sum(1 for _ in self.results_dir.glob("*.json")),
            live_workers=self.live_workers(),
        )


# ---------------------------------------------------------------------------
# The worker loop (`repro dse-worker`)
# ---------------------------------------------------------------------------


@dataclass
class WorkerReport:
    """What one :func:`run_worker` invocation did."""

    worker: str
    executed: int = 0
    failed_claims: int = 0


def _heartbeat_loop(
    broker: JobBroker,
    claim: BrokerClaim,
    stop: threading.Event,
    interval: float,
) -> None:
    while not stop.wait(interval):
        broker.heartbeat(claim)
        # Keep the worker's own liveness beacon fresh too: a job
        # longer than the TTL would otherwise make a busy worker look
        # dead to live_workers() and trigger false stall warnings.
        broker.worker_heartbeat(claim.worker)


def _run_batch_claim(
    broker: JobBroker,
    claim: BrokerClaim,
    report: WorkerReport,
    interval: float,
    say: Callable[[str], None],
) -> None:
    """Execute one claimed batch: the members share a transform-stage
    prefix, so :func:`~repro.spark.execute_job_batch` loads the stage
    snapshot once and drives every corner from it.  Each member's
    result publishes the moment it lands (``complete_member``), so a
    crash mid-batch forfeits only the still-unexecuted tail — lease
    expiry requeues exactly those corners."""
    members = claim.members or []
    say(
        f"worker {claim.worker}: executing batch {claim.job_id} "
        f"({len(members)} member(s))"
    )
    stop = threading.Event()
    beater = threading.Thread(
        target=_heartbeat_loop,
        args=(broker, claim, stop, interval),
        daemon=True,
    )
    beater.start()
    try:
        runnable: List[BatchMember] = []
        for member in members:
            if member.job is None:
                broker.complete_member(
                    claim,
                    member,
                    SynthesisOutcome(
                        ok=False,
                        error=member.error,
                        error_kind=ERROR_KIND_ENVIRONMENT,
                    ),
                )
                report.failed_claims += 1
            else:
                runnable.append(member)
        pending = iter(runnable)

        def publish(job: SynthesisJob, outcome: SynthesisOutcome) -> None:
            # on_outcome fires in submission order, so the member
            # iterator stays aligned with the jobs list.
            broker.complete_member(claim, next(pending), outcome)
            report.executed += 1

        if runnable:
            execute_job_batch(
                [member.job for member in runnable], on_outcome=publish
            )
    finally:
        stop.set()
        beater.join()
    say(f"worker {claim.worker}: batch {claim.job_id} settled")


def run_worker(
    broker: JobBroker,
    worker: Optional[str] = None,
    max_jobs: Optional[int] = None,
    idle_timeout: Optional[float] = None,
    poll: float = 0.2,
    on_event: Optional[Callable[[str], None]] = None,
) -> WorkerReport:
    """Pull-and-execute loop for one worker process.

    Claims jobs until *max_jobs* is reached or the queue has been
    empty for *idle_timeout* seconds (``None`` = run until killed —
    the service posture; lease expiry makes even SIGKILL safe).  While
    a job executes on the main thread (so per-job ``timeout`` budgets
    stay enforceable), a daemon thread heartbeats the lease every
    quarter TTL.
    """
    name = worker or default_worker_id()
    report = WorkerReport(worker=name)
    interval = broker.lease_ttl / 4.0
    say = on_event or (lambda message: None)
    idle_since = time.monotonic()
    say(f"worker {name} online: {broker.root} (lease ttl {broker.lease_ttl:g}s)")
    try:
        while max_jobs is None or report.executed < max_jobs:
            broker.worker_heartbeat(name)
            claim = broker.claim(name)
            if claim is None:
                if (
                    idle_timeout is not None
                    and time.monotonic() - idle_since > idle_timeout
                ):
                    say(f"worker {name}: idle for {idle_timeout:g}s, exiting")
                    break
                time.sleep(poll)
                continue
            if claim.members is not None:
                _run_batch_claim(broker, claim, report, interval, say)
                idle_since = time.monotonic()
                continue
            if claim.job is None:
                broker.complete(
                    claim,
                    SynthesisOutcome(
                        ok=False,
                        error=claim.error,
                        error_kind=ERROR_KIND_ENVIRONMENT,
                    ),
                )
                report.failed_claims += 1
                idle_since = time.monotonic()
                continue
            say(f"worker {name}: executing {claim.job_id} ({claim.job.label})")
            stop = threading.Event()
            beater = threading.Thread(
                target=_heartbeat_loop,
                args=(broker, claim, stop, interval),
                daemon=True,
            )
            beater.start()
            try:
                outcome = execute_job(claim.job)
            finally:
                stop.set()
                beater.join()
            broker.complete(claim, outcome)
            report.executed += 1
            status = "ok" if outcome.ok else f"infeasible ({outcome.error_kind})"
            say(f"worker {name}: {claim.job_id} settled {status}")
            idle_since = time.monotonic()
    finally:
        broker.retire_worker(name)
    return report
