"""Ranking and presentation of exploration results.

The ranking realizes the paper's designer loop — sweep scripts, pick
the schedule that meets the latency target at the least area — as a
deterministic sort: feasible outcomes first, then estimated latency
(cycles x clock period, measured cycles when the sweep simulated a
stimulus), then area, then the point label as the final tiebreak so
equal designs always print in the same order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dse.runner import ExplorationResult
from repro.spark import SynthesisOutcome


def rank_outcomes(
    outcomes: Sequence[SynthesisOutcome],
) -> List[SynthesisOutcome]:
    """Best-first, deterministic for identical metrics."""
    return sorted(outcomes, key=lambda outcome: outcome.score())


def format_table(
    outcomes: Sequence[SynthesisOutcome],
    top: Optional[int] = None,
    ranked: bool = True,
) -> str:
    """A fixed-width trade-off table of the (ranked) outcomes."""
    rows = rank_outcomes(outcomes) if ranked else list(outcomes)
    if top is not None:
        rows = rows[:top]
    label_width = max([len("design point")] + [len(r.label) for r in rows])
    header = (
        f"{'#':>3} {'design point':<{label_width}} {'states':>6} "
        f"{'cycles':>6} {'clk':>6} {'latency':>8} {'area':>8} "
        f"{'regs':>5} {'FUs':>4} {'src':>6}"
    )
    lines = [header, "-" * len(header)]
    for rank, outcome in enumerate(rows, start=1):
        if not outcome.ok:
            lines.append(
                f"{rank:>3} {outcome.label:<{label_width}} "
                f"infeasible: {outcome.error}"
            )
            continue
        source = outcome.provenance or ("cache" if outcome.cached else "run")
        lines.append(
            f"{rank:>3} {outcome.label:<{label_width}} "
            f"{outcome.num_states:>6} {outcome.cycles:>6} "
            f"{outcome.clock_period:>6.1f} {outcome.latency:>8.1f} "
            f"{outcome.area_total:>8.1f} {outcome.registers:>5} "
            f"{outcome.fu_instances:>4} {source:>6}"
        )
    return "\n".join(lines)


def summarize(result: ExplorationResult) -> str:
    """One-line sweep summary: sizes, cache traffic, pruning/early-exit
    savings, wall clock."""
    total = len(result.outcomes)
    infeasible = total - len(result.feasible)
    text = (
        f"{total} design points: {result.cache_hits} cache hits, "
        f"{result.executed} synthesized"
    )
    if result.pruned:
        text += f", {result.pruned} pruned"
    if result.deduped:
        text += f", {result.deduped} deduped"
    if result.skipped:
        text += f", {result.skipped} skipped"
    if result.executor == "broker":
        # Broker sweeps are served by external dse-worker processes,
        # so the engine's own worker count would be misleading.
        text += f" (broker), {result.elapsed:.2f}s"
    else:
        text += (
            f" ({result.workers} worker{'s' if result.workers != 1 else ''}), "
            f"{result.elapsed:.2f}s"
        )
    if infeasible:
        text += f", {infeasible} infeasible"
    verifier_failures = len(result.verifier_failures)
    if verifier_failures:
        text += f", {verifier_failures} verifier failure(s)"
    if result.goal_met:
        text += ", target met"
    return text


def format_search_summary(result: ExplorationResult) -> str:
    """The per-strategy counter line for a strategy-driven search:
    ``search[beam] seed=1 budget=24 rounds=3: 30 proposed, ...``.
    Empty string for plain grid sweeps (no search report)."""
    report = result.search
    if report is None:
        return ""
    counters = ", ".join(
        f"{count} {name}" for name, count in report.counters().items()
    )
    best = f", best={report.best_label}" if report.best_label else ""
    return (
        f"search[{report.strategy}] seed={report.seed} "
        f"budget={report.budget} rounds={report.rounds}: {counters}{best}"
    )


def format_search_trace(result: ExplorationResult) -> str:
    """The proposal-by-proposal search trace: round, corner, parent,
    how the engine settled it and what the strategy decided.  Empty
    string when there is no search report or the trace is empty."""
    report = result.search
    if report is None or not report.trace:
        return ""
    lines = ["search trace:"]
    label_width = max(
        len("design point"),
        *(len(str(entry["label"])) for entry in report.trace),
    )
    lines.append(
        f"  {'rnd':>3} {'design point':<{label_width}} {'outcome':>9} "
        f"{'decision':>8}  parent"
    )
    for entry in report.trace:
        parent = str(entry["parent"]) or "-"
        decision = str(entry["decision"]) or "-"
        lines.append(
            f"  {entry['round']:>3} {str(entry['label']):<{label_width}} "
            f"{str(entry['action']):>9} {decision:>8}  {parent}"
        )
    return "\n".join(lines)


def format_stage_breakdown(result: ExplorationResult) -> str:
    """Where the sweep's fresh executions spent their wall clock, per
    flow stage: runs vs stage-cache hits and cumulative time.  Empty
    string when nothing ran fresh (an all-hit or all-pruned sweep has
    no live stage work to report)."""
    totals = result.stage_totals()
    if not totals:
        return ""
    lines = ["stage breakdown (freshly executed points):"]
    width = max(len("stage"), *(len(stage) for stage in totals))
    lines.append(
        f"  {'stage':<{width}} {'runs':>5} {'hits':>5} {'time':>9}"
    )
    for stage, bucket in totals.items():
        lines.append(
            f"  {stage:<{width}} {int(bucket['runs']):>5} "
            f"{int(bucket['hits']):>5} {bucket['elapsed']:>8.3f}s"
        )
    return "\n".join(lines)


def format_frontier(outcomes: Sequence[SynthesisOutcome]) -> str:
    """The Pareto frontier as compact ``latency/area`` lines."""
    lines = ["latency/area frontier:"]
    for outcome in outcomes:
        lines.append(
            f"  latency {outcome.latency:>8.1f}  area "
            f"{outcome.area_total:>8.1f}  {outcome.label}"
        )
    if len(lines) == 1:
        lines.append("  (empty: no feasible points)")
    return "\n".join(lines)
