"""On-disk memoization of synthesis outcomes — and stage artifacts.

A job's cache key is the SHA-256 of its canonical JSON description —
source text, every script knob, entity, environment factory reference,
stimulus and output options — plus a format version and the package
version, so stale entries from older synthesis code never resurface.
Outcomes are stored as one JSON payload per key through a pluggable
:mod:`repro.dse.storage` backend; every backend writes atomically, so
a crashed worker never leaves a torn entry.

Lookups also key **per stage**: :func:`stage_key` hashes the prefix
of the flow a given stage depends on (see :mod:`repro.flow.keys`),
and :meth:`ResultCache.stage_store` opens the pickled-snapshot store
that shares this cache's backend (on the filesystem layouts:
``<key>.stage.pkl`` beside ``<key>.json``), so a whole-job miss can
still recall every stage whose inputs are unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

import repro
from repro.dse.storage import (
    KIND_OUTCOME,
    StorageBackend,
    make_backend,
)
from repro.flow.artifacts import StageArtifactStore
from repro.flow.keys import job_stage_key
from repro.spark import SynthesisJob, SynthesisOutcome

#: Bump when the outcome schema or synthesis semantics change in a way
#: that invalidates previously cached results.
#:
#: 2: outcomes carry ``error_kind`` (deterministic-vs-environment
#:    failure classification); environment failures are no longer
#:    cached at all.
#: 3: outcomes carry per-stage timing/provenance records (the staged
#:    flow rework).
CACHE_FORMAT = 3

#: Environment variable overriding the default cache location.
CACHE_ENV_VAR = "REPRO_DSE_CACHE"


def names_bare_cwd(path: Union[str, Path]) -> bool:
    """True for path spellings that normalize to the bare current
    directory ("", ".", "./", ``Path("")``): never a deliberate cache
    location.  The engine treats them as "caching disabled" and the
    maintenance CLI rejects them outright."""
    return os.fspath(path) == "" or Path(path) == Path(".")


def default_cache_dir() -> Path:
    """``$REPRO_DSE_CACHE`` or ``~/.cache/repro-dse``."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-dse"


def job_key(job: SynthesisJob) -> str:
    """Content hash identifying a job's result."""
    payload = {
        "format": CACHE_FORMAT,
        "version": repro.__version__,
        "job": job.fingerprint_data(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def stage_key(job: SynthesisJob, stage: str) -> str:
    """Content hash identifying one *stage's* artifact for *job*: the
    cumulative hash of exactly the inputs consumed up to that stage,
    so jobs differing only in later-stage knobs share it (see
    :mod:`repro.flow.keys` for the contract)."""
    return job_stage_key(job, stage)


class ResultCache:
    """Memoized :class:`SynthesisOutcome` records over one storage
    backend.

    *root* accepts a plain directory (selecting the default sharded
    filesystem backend), a backend spec string such as
    ``sqlite:<dir>``, or an already-constructed backend instance;
    an explicit *backend* kind (e.g. from ``--cache-backend``)
    overrides a spec prefix.  Construction ensures the physical
    location exists (and migrates a flat legacy directory), so it
    raises where the old directory ``mkdir`` used to."""

    def __init__(
        self,
        root: Union[str, Path, StorageBackend],
        backend: Optional[str] = None,
    ) -> None:
        self.backend = make_backend(root, kind=backend)
        self.backend.ensure()
        self.root = self.backend.root
        self.hits = 0
        self.misses = 0

    @property
    def spec(self) -> str:
        """The backend spec string (what the engine stamps onto
        dispatched jobs as ``stage_cache_dir``)."""
        return self.backend.spec

    def path_for(self, key: str) -> Path:
        """Where *key*'s entry lives (filesystem backends only)."""
        return self.backend.entry_path(key, KIND_OUTCOME)

    def get(
        self, key: str, require_verified: bool = False
    ) -> Optional[SynthesisOutcome]:
        """The cached outcome, or None on a miss (corrupt entries are
        dropped and counted as misses).

        With *require_verified*, an entry whose run did not have the
        static verifier enabled reads as a miss — a ``--verify-each``
        sweep must not be satisfied by unverified work.  The entry is
        left in place (it is valid, just not verified); the verified
        re-run overwrites it via :meth:`put`, upgrading it for both
        kinds of future requests.  Verification never changes what a
        correct flow computes, so the asymmetry is sound: verified
        entries serve unverified requests for free."""
        try:
            payload = self.backend.get(key, KIND_OUTCOME)
            if payload is None:
                self.misses += 1
                return None
            data = json.loads(payload.decode("utf-8"))
            outcome = SynthesisOutcome.from_dict(data["outcome"])
        except (OSError, ValueError, KeyError, TypeError):
            self.backend.drop(key, KIND_OUTCOME)
            self.misses += 1
            return None
        if require_verified and not outcome.verified:
            self.misses += 1
            return None
        self.hits += 1
        outcome.cached = True
        outcome.provenance = "cache"
        return outcome

    def put(self, key: str, outcome: SynthesisOutcome, label: str = "") -> None:
        """Persist atomically (the backend contract).

        Outcomes that are unsound to memoize — environment/setup
        failures, pruning inferences — are silently skipped so a
        transient worker failure can never be replayed as a permanent
        cache hit."""
        if not outcome.cacheable:
            return
        record = {
            "format": CACHE_FORMAT,
            "label": label or outcome.label,
            "outcome": outcome.to_dict(),
        }
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        self.backend.put(key, KIND_OUTCOME, payload)

    def stage_store(self, passthrough=()) -> StageArtifactStore:
        """The stage-artifact store sharing this cache's backend
        (``len(store)`` counts the stage entries).  Callers probing
        artifacts under an alarm-based deadline must pass the
        deadline exception type via *passthrough* so it is never
        swallowed as a corrupt-artifact miss."""
        return StageArtifactStore(
            self.backend, passthrough=tuple(passthrough)
        )

    def clear(self) -> int:
        """Drop every outcome entry; returns the number removed.
        Stage artifacts are left alone (the directory-level
        :class:`~repro.dse.service.CacheService` clears both)."""
        return self.backend.clear(kind=KIND_OUTCOME)

    def __len__(self) -> int:
        return sum(
            1
            for entry in self.backend.entries()
            if entry.kind == KIND_OUTCOME
        )

    def stats(self) -> str:
        return f"{self.hits} hits, {self.misses} misses"
