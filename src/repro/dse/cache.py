"""On-disk memoization of synthesis outcomes — and stage artifacts.

A job's cache key is the SHA-256 of its canonical JSON description —
source text, every script knob, entity, environment factory reference,
stimulus and output options — plus a format version and the package
version, so stale entries from older synthesis code never resurface.
Outcomes are stored one JSON file per key; writes go through a
temp-file rename so a crashed worker never leaves a torn entry.

Lookups also key **per stage**: :func:`stage_key` hashes the prefix
of the flow a given stage depends on (see :mod:`repro.flow.keys`),
and :meth:`ResultCache.stage_store` opens the pickled-snapshot store
that lives in the same directory (``<key>.stage.pkl`` beside
``<key>.json``), so a whole-job miss can still recall every stage
whose inputs are unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

import repro
from repro.flow.artifacts import STAGE_SUFFIX, StageArtifactStore
from repro.flow.keys import job_stage_key
from repro.spark import SynthesisJob, SynthesisOutcome

#: Bump when the outcome schema or synthesis semantics change in a way
#: that invalidates previously cached results.
#:
#: 2: outcomes carry ``error_kind`` (deterministic-vs-environment
#:    failure classification); environment failures are no longer
#:    cached at all.
#: 3: outcomes carry per-stage timing/provenance records (the staged
#:    flow rework).
CACHE_FORMAT = 3

#: Environment variable overriding the default cache location.
CACHE_ENV_VAR = "REPRO_DSE_CACHE"


def names_bare_cwd(path: Union[str, Path]) -> bool:
    """True for path spellings that normalize to the bare current
    directory ("", ".", "./", ``Path("")``): never a deliberate cache
    location.  The engine treats them as "caching disabled" and the
    maintenance CLI rejects them outright."""
    return os.fspath(path) == "" or Path(path) == Path(".")


def default_cache_dir() -> Path:
    """``$REPRO_DSE_CACHE`` or ``~/.cache/repro-dse``."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-dse"


def job_key(job: SynthesisJob) -> str:
    """Content hash identifying a job's result."""
    payload = {
        "format": CACHE_FORMAT,
        "version": repro.__version__,
        "job": job.fingerprint_data(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def stage_key(job: SynthesisJob, stage: str) -> str:
    """Content hash identifying one *stage's* artifact for *job*: the
    cumulative hash of exactly the inputs consumed up to that stage,
    so jobs differing only in later-stage knobs share it (see
    :mod:`repro.flow.keys` for the contract)."""
    return job_stage_key(job, stage)


class ResultCache:
    """Directory of memoized :class:`SynthesisOutcome` records."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(
        self, key: str, require_verified: bool = False
    ) -> Optional[SynthesisOutcome]:
        """The cached outcome, or None on a miss (corrupt entries are
        dropped and counted as misses).

        With *require_verified*, an entry whose run did not have the
        static verifier enabled reads as a miss — a ``--verify-each``
        sweep must not be satisfied by unverified work.  The entry is
        left in place (it is valid, just not verified); the verified
        re-run overwrites it via :meth:`put`, upgrading it for both
        kinds of future requests.  Verification never changes what a
        correct flow computes, so the asymmetry is sound: verified
        entries serve unverified requests for free."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            outcome = SynthesisOutcome.from_dict(data["outcome"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        if require_verified and not outcome.verified:
            self.misses += 1
            return None
        self.hits += 1
        outcome.cached = True
        outcome.provenance = "cache"
        try:
            # Touch the entry so the cache service's LRU eviction sees
            # *use* recency, not just write recency.
            os.utime(path)
        except OSError:
            pass
        return outcome

    def put(self, key: str, outcome: SynthesisOutcome, label: str = "") -> None:
        """Persist atomically (write temp file, rename into place).

        Outcomes that are unsound to memoize — environment/setup
        failures, pruning inferences — are silently skipped so a
        transient worker failure can never be replayed as a permanent
        cache hit."""
        if not outcome.cacheable:
            return
        record = {
            "format": CACHE_FORMAT,
            "label": label or outcome.label,
            "outcome": outcome.to_dict(),
        }
        fd, temp_path = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(temp_path, self.path_for(key))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def stage_store(self, passthrough=()) -> StageArtifactStore:
        """The stage-artifact store sharing this cache directory
        (``len(store)`` counts the ``*.stage.pkl`` entries).  Callers
        probing artifacts under an alarm-based deadline must pass the
        deadline exception type via *passthrough* so it is never
        swallowed as a corrupt-artifact miss."""
        return StageArtifactStore(self.root, passthrough=tuple(passthrough))

    def clear(self) -> int:
        """Drop every outcome entry; returns the number removed.
        Stage artifacts are left alone (the directory-level
        :class:`~repro.dse.service.CacheService` clears both)."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def stats(self) -> str:
        return f"{self.hits} hits, {self.misses} misses"
