"""Pluggable cache/artifact storage for the DSE layer.

See :mod:`repro.dse.storage.base` for the backend contract,
:mod:`repro.dse.storage.fs` for the sharded/flat filesystem layouts
and :mod:`repro.dse.storage.sqlite` for the single-file sqlite/WAL
backend.  :func:`make_backend` turns a spec string (or a plain cache
directory) into a backend instance.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from repro.dse.storage.base import (
    BACKEND_KINDS,
    KIND_OUTCOME,
    KIND_STAGE,
    NUM_SHARDS,
    StorageBackend,
    StorageEntry,
    parse_storage_spec,
    shard_budgets,
    shard_of,
    storage_spec,
)
from repro.dse.storage.fs import (
    INDEX_NAME,
    FlatFsBackend,
    ShardedFsBackend,
)
from repro.dse.storage.locks import (
    LOCK_NAME,
    CacheLockTimeout,
    DirectoryLock,
)
from repro.dse.storage.sqlite import SqliteBackend

_BACKENDS = {
    "fs": ShardedFsBackend,
    "flat": FlatFsBackend,
    "sqlite": SqliteBackend,
}


def make_backend(
    root: Union[str, Path, StorageBackend],
    kind: Optional[str] = None,
) -> StorageBackend:
    """A backend for *root*: an existing backend instance passes
    through; otherwise *root* is a spec string or plain directory
    (see :func:`parse_storage_spec`), and an explicit *kind* — e.g.
    from ``--cache-backend`` — overrides the spec prefix."""
    if isinstance(root, StorageBackend):
        return root
    spec_kind, location = parse_storage_spec(os.fspath(root))
    chosen = kind if kind is not None else spec_kind
    try:
        factory = _BACKENDS[chosen]
    except KeyError:
        raise ValueError(
            f"unknown cache backend {chosen!r}; expected one of "
            f"{', '.join(BACKEND_KINDS)}"
        ) from None
    return factory(location)


__all__ = [
    "BACKEND_KINDS",
    "CacheLockTimeout",
    "DirectoryLock",
    "FlatFsBackend",
    "INDEX_NAME",
    "KIND_OUTCOME",
    "KIND_STAGE",
    "LOCK_NAME",
    "NUM_SHARDS",
    "ShardedFsBackend",
    "SqliteBackend",
    "StorageBackend",
    "StorageEntry",
    "make_backend",
    "parse_storage_spec",
    "shard_budgets",
    "shard_of",
    "storage_spec",
]
