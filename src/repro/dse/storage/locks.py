"""Advisory directory locking for cache maintenance.

:class:`DirectoryLock` lived in :mod:`repro.dse.service` through PR 9;
it moved here when the storage layer grew shard-scoped locking (every
filesystem shard carries its own lock instance) so the lock has no
dependency on the service layer.  ``repro.dse.service`` re-exports it
under the old name for compatibility.

Two implementations behind one interface:

* ``flock`` on a sentinel file where available — locks die with the
  holder, so a crashed process never wedges the cache, and exclusion
  is kernel-enforced;
* an ``O_CREAT|O_EXCL`` spin lock elsewhere, where a lock file older
  than ``stale_after`` seconds is treated as abandoned and broken.

The spin-lock fallback is best-effort advisory locking: age is the
only liveness signal, so a holder that legitimately works longer than
``stale_after`` (default: one hour) can be broken.  What it does
guarantee — this was a real race, fixed with a regression test — is
that **at most one waiter ever concludes it broke a given stale
lock**: breaking happens by atomic rename-to-grave, never by unlink,
and each lock file carries a per-acquisition ownership token so a
holder whose lock was stolen and re-granted can never unlink the new
holder's lock file on release.

Every acquisition records how long it blocked in :attr:`waited`, so
the storage backends can account lock contention (the
``cache_contention`` benchmark phase aggregates exactly this).
"""

from __future__ import annotations

import os
import time
import uuid
from pathlib import Path
from typing import Optional, Union

try:  # POSIX only; the spin-lock fallback covers the rest.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

LOCK_NAME = ".lock"


class CacheLockTimeout(TimeoutError):
    """Raised when the directory lock cannot be acquired in time."""


class DirectoryLock:
    """Advisory exclusive lock over one cache (or shard) directory."""

    def __init__(
        self,
        root: Union[str, Path],
        timeout: float = 10.0,
        poll: float = 0.05,
        stale_after: float = 3600.0,
    ) -> None:
        self.root = Path(root)
        self.timeout = timeout
        self.poll = poll
        self.stale_after = stale_after
        #: Cumulative seconds this instance spent blocked in
        #: :meth:`acquire` (contention accounting; ~0 when uncontended).
        self.waited = 0.0
        self._fd: Optional[int] = None
        self._spin_path: Optional[Path] = None
        self._token: Optional[bytes] = None

    def acquire(self) -> None:
        started = time.monotonic()
        deadline = started + self.timeout
        lock_path = self.root / LOCK_NAME
        if fcntl is not None:
            fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    self.waited += time.monotonic() - started
                    return
                except OSError:
                    if time.monotonic() >= deadline:
                        os.close(fd)
                        self.waited += time.monotonic() - started
                        raise CacheLockTimeout(
                            f"cache lock busy for {self.timeout:.1f}s: "
                            f"{lock_path}"
                        ) from None
                    time.sleep(self.poll)
        spin_path = self.root / (LOCK_NAME + ".pid")
        token = f"{os.getpid()}:{uuid.uuid4().hex}".encode("ascii")
        while True:
            try:
                fd = os.open(
                    spin_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
                os.write(fd, token)
                os.close(fd)
                self._spin_path = spin_path
                self._token = token
                self.waited += time.monotonic() - started
                return
            except FileExistsError:
                self._break_stale_spin_lock(spin_path)
                if time.monotonic() >= deadline:
                    self.waited += time.monotonic() - started
                    raise CacheLockTimeout(
                        f"cache lock busy for {self.timeout:.1f}s: "
                        f"{spin_path}"
                    ) from None
                time.sleep(self.poll)

    def _break_stale_spin_lock(self, spin_path: Path) -> bool:
        """Remove a spin-lock file abandoned by a crashed holder (no
        living process refreshes it, so age is the only signal).

        Breaking happens by atomic *rename* to a per-breaker grave
        name, never by direct unlink: when several waiters decide the
        lock is stale at once, exactly one rename succeeds, so two
        waiters can never each remove a lock file (the classic
        stat-then-unlink race that would let two of them acquire).
        After winning the rename the age is re-checked; a lock that
        turns out to be live (replaced between stat and rename) is
        restored via ``os.link``, which fails harmlessly if a newer
        holder has taken the slot meanwhile — and because every lock
        file carries its holder's ownership token, the restored
        holder's eventual :meth:`release` can never unlink a lock
        that is no longer its own.

        Returns True only for the single waiter whose rename both
        succeeded *and* removed a genuinely stale lock; every other
        caller (lost the rename race, lock was released meanwhile, or
        the steal turned out to be live) gets False."""
        try:
            if time.time() - spin_path.stat().st_mtime <= self.stale_after:
                return False
        except OSError:  # already released
            return False
        grave = spin_path.with_name(
            f"{spin_path.name}.broken-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        try:
            os.rename(spin_path, grave)
        except OSError:  # another waiter broke it (or it was released)
            return False
        try:
            stolen_live = (
                time.time() - grave.stat().st_mtime <= self.stale_after
            )
        except OSError:
            stolen_live = False
        if stolen_live:
            try:
                os.link(grave, spin_path)
            except OSError:
                pass
        try:
            grave.unlink()
        except OSError:
            pass
        return not stolen_live

    def release(self) -> None:
        if self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)  # type: ignore[union-attr]
            finally:
                os.close(self._fd)
                self._fd = None
        if self._spin_path is not None:
            # Unlink only a lock file that still carries *our* token: a
            # holder whose (legitimately long-running) lock was broken
            # as stale and re-granted to another waiter must not remove
            # the new holder's lock on the way out.
            try:
                current = self._spin_path.read_bytes()
            except OSError:  # pragma: no cover - already gone
                current = b""
            if current == self._token:
                try:
                    self._spin_path.unlink()
                except OSError:  # pragma: no cover - already gone
                    pass
            self._spin_path = None
            self._token = None

    def __enter__(self) -> "DirectoryLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()
