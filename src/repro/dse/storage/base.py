"""The storage backend contract for the shared DSE cache.

Everything the cache layer persists — memoized outcome records
(``ResultCache``) and pickled stage artifacts (``StageArtifactStore``)
— goes through one :class:`StorageBackend` interface: byte payloads
addressed by ``(key, kind)``, where *key* is a 64-hex SHA-256 content
hash and *kind* is :data:`KIND_OUTCOME` or :data:`KIND_STAGE`.  The
clients own (de)serialization and miss/corruption policy; backends own
placement, atomicity, recency tracking and locking.

**Sharding.**  Every backend partitions the key space into
``num_shards`` shards by the key's leading hex digit
(:func:`shard_of`), and exposes:

* ``shard_lock(shard)`` — a context manager scoping maintenance
  (gc, clear, reindex) to one shard so maintenance on shard 3 never
  blocks a sweep writing to shard 7;
* ``entries(shard=...)`` — a lock-free enumeration used by stats and
  by gc's decision scan;
* per-shard usage accounting: the cache service splits the global
  byte budget across shards (:func:`shard_budgets`, which always sums
  exactly to the global budget) and evicts LRU-first within each.

Reads and writes themselves take **no lock** on any backend: puts are
atomic (rename / single-statement upsert), and a reader that loses an
entry mid-read sees an ordinary miss and recomputes.

**Backend specs.**  A backend is named by a *spec string* that travels
anywhere a cache directory used to: ``"<path>"`` selects the sharded
filesystem backend rooted at *path* (so every pre-existing spelling
keeps working), ``"flat:<path>"`` the legacy single-lock flat layout,
and ``"sqlite:<path>"`` a single-file sqlite/WAL database at
``<path>/cache.sqlite3``.  Specs ride the broker wire format in
``SynthesisJob.stage_cache_dir`` unchanged — a worker that receives a
spec it predates simply treats it as a path and degrades to a no-op
stage cache, never a crash.
"""

from __future__ import annotations

import abc
import os
from pathlib import Path
from typing import ContextManager, List, Optional, Tuple, Union

from repro.flow.artifacts import STAGE_SUFFIX

#: Entry kinds: memoized outcome records and pickled stage artifacts.
KIND_OUTCOME = "outcome"
KIND_STAGE = "stage"

#: Key-prefix shard count for sharded backends (one hex digit).
NUM_SHARDS = 16

#: Recognized backend kinds, in spec-prefix matching order.  ``fs`` is
#: the default: a bare path parses as ``fs:<path>``.
BACKEND_KINDS = ("fs", "flat", "sqlite")

#: Filename suffix per entry kind (filesystem backends; the sqlite
#: backend stores the kind in a column instead).
KIND_SUFFIXES = {KIND_OUTCOME: ".json", KIND_STAGE: STAGE_SUFFIX}


def shard_of(key: str, num_shards: int = NUM_SHARDS) -> int:
    """The shard owning *key*: its leading hex digit, modulo the
    backend's shard count (1 for the flat backend, where every key
    lands in shard 0)."""
    try:
        digit = int(key[0], 16)
    except (ValueError, IndexError):
        digit = 0
    return digit % num_shards


def shard_budgets(max_bytes: int, num_shards: int) -> List[int]:
    """The global byte budget split across shards.  Integer division
    would silently shrink the budget by up to ``num_shards - 1``
    bytes; the remainder is spread over the leading shards instead so
    the per-shard budgets always sum *exactly* to ``max_bytes``."""
    if num_shards <= 0:
        return []
    base, remainder = divmod(max(max_bytes, 0), num_shards)
    return [
        base + (1 if index < remainder else 0)
        for index in range(num_shards)
    ]


def parse_storage_spec(spec: Union[str, os.PathLike]) -> Tuple[str, str]:
    """``(kind, root)`` from a backend spec string.  A bare path is
    the sharded filesystem backend; ``flat:``/``sqlite:`` prefixes
    select the others.  (``fs:`` is accepted for symmetry.)"""
    text = os.fspath(spec)
    for kind in BACKEND_KINDS:
        prefix = kind + ":"
        if text.startswith(prefix):
            return kind, text[len(prefix):]
    return "fs", text


def storage_spec(kind: str, root: Union[str, Path]) -> str:
    """The canonical spec string for a backend: the bare path for the
    default ``fs`` kind (so specs stay valid cache-dir arguments for
    older readers), ``<kind>:<path>`` otherwise."""
    text = os.fspath(root)
    return text if kind == "fs" else f"{kind}:{text}"


class StorageEntry:
    """One stored entry, as enumerated by :meth:`StorageBackend.entries`."""

    __slots__ = ("key", "kind", "bytes", "mtime", "shard")

    def __init__(
        self, key: str, kind: str, bytes: int, mtime: float, shard: int
    ) -> None:
        self.key = key
        self.kind = kind
        self.bytes = bytes
        self.mtime = mtime
        self.shard = shard

    @property
    def index_key(self) -> str:
        """The entry's name in the materialized index — the bare key
        for outcomes, ``<key>.stage.pkl`` for stage artifacts (the
        naming the index used before the storage layer existed)."""
        if self.kind == KIND_STAGE:
            return self.key + STAGE_SUFFIX
        return self.key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StorageEntry({self.key[:12]}…, {self.kind}, "
            f"{self.bytes}B, shard={self.shard})"
        )


class StorageBackend(abc.ABC):
    """Byte storage for cache entries, addressed by ``(key, kind)``.

    Contract highlights (see the module docstring for the full
    semantics):

    * :meth:`get`/:meth:`put`/:meth:`drop` are lock-free; ``put`` is
      atomic and raises on failure (clients decide whether that
      degrades); ``get`` returns ``None`` for a missing entry and
      touches recency on a hit; ``drop`` is best-effort.
    * :meth:`entries` enumerates lock-free; entries vanishing
      mid-scan are skipped.
    * :meth:`shard_lock` scopes maintenance to one shard; lock wait
      time accumulates in :attr:`lock_waited`.
    * :meth:`ensure` creates the physical location (directories,
      schema) and performs any pending legacy migration; it is the
      only method entitled to raise on an unusable location.
    """

    #: Backend kind name (one of :data:`BACKEND_KINDS`).
    kind: str = ""
    #: Shard count (16 for sharded backends, 1 for the flat layout).
    num_shards: int = NUM_SHARDS

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        #: Cumulative seconds spent blocked on shard locks (and, for
        #: sqlite, busy-retry backoff) — contention accounting.
        self.lock_waited = 0.0

    @property
    def spec(self) -> str:
        """The spec string reconstructing this backend (rides the
        broker wire format in ``SynthesisJob.stage_cache_dir``)."""
        return storage_spec(self.kind, self.root)

    def shard_of(self, key: str) -> int:
        return shard_of(key, self.num_shards)

    # -- lifecycle ----------------------------------------------------------

    @abc.abstractmethod
    def ensure(self) -> None:
        """Create the physical storage location (and migrate any
        legacy layout found there).  Raises ``OSError`` (or a backend
        error) when the location is unusable."""

    # -- data plane (lock-free) ---------------------------------------------

    @abc.abstractmethod
    def get(self, key: str, kind: str) -> Optional[bytes]:
        """The stored payload, or ``None`` when absent.  Touches the
        entry's recency on a hit.  Storage-level "not there" is a
        ``None``; anything else propagates for the client's policy
        net to classify."""

    @abc.abstractmethod
    def put(self, key: str, kind: str, payload: bytes) -> None:
        """Persist *payload* atomically (a torn write must never be
        observable under the key).  Raises on failure."""

    @abc.abstractmethod
    def drop(self, key: str, kind: str) -> None:
        """Best-effort removal; absent entries and I/O trouble are
        ignored."""

    # -- control plane ------------------------------------------------------

    @abc.abstractmethod
    def entries(self, shard: Optional[int] = None) -> List[StorageEntry]:
        """Every stored entry (optionally restricted to one shard),
        enumerated without taking any lock."""

    @abc.abstractmethod
    def shard_lock(
        self, shard: int, timeout: float = 10.0
    ) -> ContextManager[object]:
        """An exclusive maintenance lock over one shard."""

    @abc.abstractmethod
    def sweep_stale_temps(self, horizon_seconds: float) -> int:
        """Remove write temporaries orphaned by crashed writers and
        older than *horizon_seconds*; returns how many were swept."""

    def clear(self, kind: Optional[str] = None) -> int:
        """Drop every entry (of *kind*, or all kinds); returns the
        number removed.  Callers wanting exclusion hold the shard
        locks around this."""
        removed = 0
        for entry in self.entries():
            if kind is not None and entry.kind != kind:
                continue
            self.drop(entry.key, entry.kind)
            removed += 1
        return removed

    # -- materialized index (optional) --------------------------------------

    def read_index(self) -> Optional[dict]:
        """The last materialized index, or ``None`` when this backend
        keeps none (stats then fall back to a live scan)."""
        return None

    def write_index(self, index: dict) -> None:
        """Persist the materialized index (no-op by default)."""
