"""Filesystem storage backends: 16-way sharded, plus the legacy flat
layout.

:class:`ShardedFsBackend` is the default.  It keeps the filesystem
cache's operational properties — atomic temp-file renames, mtime
recency, human-greppable entries — but splits the directory into 16
key-prefix shards (``shard-0`` … ``shard-f``, by the key's leading
hex digit), each with its own :class:`DirectoryLock`, so maintenance
contention divides by 16 and a gc pass never holds one global lock
for a whole-directory scan.

**Legacy migration.**  A root written by the pre-shard layout (entry
files directly in the root) is migrated transparently: each 64-hex
``<sha>.json`` / ``<sha>.stage.pkl`` found at the root is moved into
its shard with ``os.replace`` — atomic, mtime-preserving (so LRU
recency survives), and idempotent under concurrent migrators (the
loser's rename simply finds the source gone).  Migration runs at
:meth:`ensure` and again lazily before any enumeration, so a stray
flat entry written later by an old client is still adopted rather
than leaked; a flat entry is also consulted directly on a sharded
read miss before concluding the key is absent.  Foreign files
(anything not shaped like an entry) are never touched.

:class:`FlatFsBackend` *is* the pre-shard layout (``num_shards == 1``,
one lock at the root), kept for strict layout compatibility with
external tooling and as the single-lock baseline the
``cache_contention`` benchmark phase measures against.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.dse.storage.base import (
    KIND_OUTCOME,
    KIND_STAGE,
    KIND_SUFFIXES,
    StorageBackend,
    StorageEntry,
)
from repro.dse.storage.locks import DirectoryLock

#: Shard directory name prefix: ``shard-0`` … ``shard-f``.
SHARD_PREFIX = "shard-"

#: Materialized index file name.  Deliberately *not* ``*.json`` so
#: entry globs never mistake it for an outcome.
INDEX_NAME = "index.meta"

_KIND_BY_SUFFIX = {suffix: kind for kind, suffix in KIND_SUFFIXES.items()}


class _TrackedLock:
    """Context manager adapting one :class:`DirectoryLock` so its
    acquisition wait feeds the backend's contention counter."""

    def __init__(self, backend: "ShardedFsBackend", lock: DirectoryLock):
        self._backend = backend
        self._lock = lock

    def __enter__(self) -> DirectoryLock:
        before = self._lock.waited
        try:
            self._lock.acquire()
        finally:
            self._backend.lock_waited += self._lock.waited - before
        return self._lock

    def __exit__(self, *exc_info: object) -> None:
        self._lock.release()


class ShardedFsBackend(StorageBackend):
    """16-way key-prefix-sharded filesystem layout."""

    kind = "fs"
    num_shards = 16

    def __init__(self, root: Union[str, Path]) -> None:
        super().__init__(root)

    # -- layout -------------------------------------------------------------

    def shard_dir(self, shard: int) -> Path:
        return self.root / f"{SHARD_PREFIX}{shard:x}"

    def entry_path(self, key: str, kind: str) -> Path:
        """Where *key*'s entry lives in the sharded layout."""
        return self.shard_dir(self.shard_of(key)) / (
            key + KIND_SUFFIXES[kind]
        )

    def _legacy_path(self, key: str, kind: str) -> Path:
        return self.root / (key + KIND_SUFFIXES[kind])

    # -- lifecycle ----------------------------------------------------------

    def ensure(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        for shard in range(self.num_shards):
            self.shard_dir(shard).mkdir(exist_ok=True)
        self._migrate_flat()

    def _migrate_flat(self) -> None:
        """Adopt pre-shard entries found at the root (best-effort;
        concurrent migrators race benignly on ``os.replace``)."""
        for path, key, kind in _scan_entries(self.root):
            target = self.entry_path(key, kind)
            try:
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, target)
            except OSError:
                continue

    # -- data plane ---------------------------------------------------------

    def get(self, key: str, kind: str) -> Optional[bytes]:
        path = self.entry_path(key, kind)
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            migrated = self._adopt_legacy(key, kind)
            if migrated is None:
                return None
            path, payload = migrated
        try:
            # Touch the entry so LRU eviction sees *use* recency, not
            # just write recency.
            os.utime(path)
        except OSError:
            pass
        return payload

    def _adopt_legacy(
        self, key: str, kind: str
    ) -> Optional[Tuple[Path, bytes]]:
        """A flat-layout entry for *key*, moved into its shard and
        read — or ``None`` when the key is genuinely absent."""
        legacy = self._legacy_path(key, kind)
        target = self.entry_path(key, kind)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(legacy, target)
        except OSError:
            return None
        try:
            return target, target.read_bytes()
        except FileNotFoundError:  # lost to a concurrent gc/clear
            return None

    def put(self, key: str, kind: str, payload: bytes) -> None:
        shard_dir = self.shard_dir(self.shard_of(key))
        shard_dir.mkdir(parents=True, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(
            dir=shard_dir, prefix=".tmp-", suffix=KIND_SUFFIXES[kind]
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(temp_path, self.entry_path(key, kind))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def drop(self, key: str, kind: str) -> None:
        for path in (
            self.entry_path(key, kind),
            self._legacy_path(key, kind),
        ):
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- control plane ------------------------------------------------------

    def entries(self, shard: Optional[int] = None) -> List[StorageEntry]:
        self._migrate_flat()
        found: List[StorageEntry] = []
        shards: Iterator[int] = (
            iter(range(self.num_shards)) if shard is None else iter((shard,))
        )
        for index in shards:
            directory = self.shard_dir(index)
            for path, key, kind in _scan_entries(directory):
                try:
                    stat = path.stat()
                except OSError:  # lost to a concurrent gc/clear
                    continue
                found.append(
                    StorageEntry(
                        key=key,
                        kind=kind,
                        bytes=stat.st_size,
                        mtime=stat.st_mtime,
                        shard=index,
                    )
                )
        return found

    def shard_lock(self, shard: int, timeout: float = 10.0) -> _TrackedLock:
        directory = self.shard_dir(shard)
        directory.mkdir(parents=True, exist_ok=True)
        return _TrackedLock(self, DirectoryLock(directory, timeout=timeout))

    def sweep_stale_temps(self, horizon_seconds: float) -> int:
        horizon = time.time() - horizon_seconds
        swept = 0
        directories = [self.root]
        directories.extend(
            self.shard_dir(index) for index in range(self.num_shards)
        )
        for directory in directories:
            for path in directory.glob(".tmp-*"):
                try:
                    if path.stat().st_mtime < horizon:
                        path.unlink()
                        swept += 1
                except OSError:
                    continue
        return swept

    # -- materialized index -------------------------------------------------

    def read_index(self) -> Optional[dict]:
        try:
            import json

            with open(
                self.root / INDEX_NAME, "r", encoding="utf-8"
            ) as handle:
                loaded = json.load(handle)
        except (OSError, ValueError):
            return None
        return loaded if isinstance(loaded, dict) else None

    def write_index(self, index: dict) -> None:
        # Unique temp per writer: concurrent gc's on disjoint shards
        # finish with concurrent index rewrites, and a shared temp
        # name would let one writer consume (or interleave with)
        # another's file mid-publish.  Last replace wins, atomically.
        import json

        fd, temp_path = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".index"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(index, handle, sort_keys=True)
            os.replace(temp_path, self.root / INDEX_NAME)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def drop_index(self) -> None:
        try:
            (self.root / INDEX_NAME).unlink()
        except OSError:
            pass


class FlatFsBackend(ShardedFsBackend):
    """The pre-shard single-directory layout: every entry at the
    root, one lock, one shard.  Never migrates anything (the layout
    *is* the legacy layout)."""

    kind = "flat"
    num_shards = 1

    def shard_dir(self, shard: int) -> Path:
        return self.root

    def ensure(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)

    def _migrate_flat(self) -> None:
        return None

    def _adopt_legacy(
        self, key: str, kind: str
    ) -> Optional[Tuple[Path, bytes]]:
        return None

    def sweep_stale_temps(self, horizon_seconds: float) -> int:
        horizon = time.time() - horizon_seconds
        swept = 0
        for path in self.root.glob(".tmp-*"):
            try:
                if path.stat().st_mtime < horizon:
                    path.unlink()
                    swept += 1
            except OSError:
                continue
        return swept


def _scan_entries(
    directory: Path,
) -> Iterator[Tuple[Path, str, str]]:
    """``(path, key, kind)`` for every entry-shaped file directly in
    *directory*: ``<64-hex>.json`` outcomes and ``<64-hex>.stage.pkl``
    stage artifacts.  Foreign files are skipped."""
    for suffix, kind in _KIND_BY_SUFFIX.items():
        try:
            candidates = list(directory.glob(f"*{suffix}"))
        except OSError:  # directory vanished mid-scan
            return
        for path in candidates:
            key = path.name[: -len(suffix)]
            # Only the key length is checked (matching the pre-shard
            # enumeration): keys are SHA-256 hex in practice, but the
            # contract is any 64-char name; non-hex leading characters
            # simply land in shard 0.
            if len(key) == 64:
                yield path, key, kind
