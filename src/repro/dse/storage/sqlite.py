"""A single-file sqlite/WAL storage backend.

One database (``<root>/cache.sqlite3``) holds every entry as a
BLOB-valued row, which removes the sharded-filesystem backend's one
deployment constraint: broker fleets no longer need worker machines
to share a cache mount.  Each machine points the spec
(``sqlite:<dir>``) at a *local* directory and gets a private,
self-contained stage/outcome cache; the broker directory remains the
only shared filesystem surface.

Concurrency model:

* WAL journal mode, so readers never block the single writer and a
  crashed process never leaves a corrupt main database;
* every statement retries on ``SQLITE_BUSY``/``locked`` with capped
  exponential backoff (on top of sqlite's own busy timeout); time
  spent backing off accumulates in :attr:`lock_waited`, mirroring
  the filesystem backends' lock-wait accounting;
* :meth:`shard_lock` is a no-op context manager: sqlite serializes
  writers internally and the cache service's maintenance operations
  are idempotent deletions, so an advisory lock would only add a
  second lock hierarchy.  Shard semantics (enumeration, budgets)
  still apply via the ``shard`` column.

Connections are opened lazily per ``(instance, pid)``: a backend that
rides into a forked/spawned pool worker transparently reopens rather
than sharing a connection across processes (sqlite connections are
not fork-safe).

WAL requires a filesystem with working POSIX locks — local disks,
not NFS.  That is the intended deployment: *local* per-machine
caches.  For shared-mount caches, use the sharded filesystem
backend.
"""

from __future__ import annotations

import os
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.dse.storage.base import (
    StorageBackend,
    StorageEntry,
)

DB_NAME = "cache.sqlite3"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    key     TEXT    NOT NULL,
    kind    TEXT    NOT NULL,
    shard   INTEGER NOT NULL,
    payload BLOB    NOT NULL,
    bytes   INTEGER NOT NULL,
    mtime   REAL    NOT NULL,
    PRIMARY KEY (key, kind)
);
CREATE INDEX IF NOT EXISTS entries_shard_mtime ON entries(shard, mtime);
"""

#: Total time budget for busy retries on one statement.
BUSY_DEADLINE_SECONDS = 10.0

#: First backoff sleep; doubles up to :data:`_BACKOFF_MAX_SECONDS`.
_BACKOFF_START_SECONDS = 0.002
_BACKOFF_MAX_SECONDS = 0.1


def _is_busy(error: sqlite3.OperationalError) -> bool:
    text = str(error).lower()
    return "locked" in text or "busy" in text


class SqliteBackend(StorageBackend):
    """BLOB-valued entries in one WAL-mode sqlite database."""

    kind = "sqlite"
    num_shards = 16

    def __init__(
        self,
        root: Union[str, Path],
        busy_timeout: float = BUSY_DEADLINE_SECONDS,
    ) -> None:
        super().__init__(root)
        self.busy_timeout = busy_timeout
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None

    @property
    def db_path(self) -> Path:
        return self.root / DB_NAME

    # -- connection management ----------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._conn is not None and self._conn_pid != pid:
            # Inherited across a fork: abandon (closing could corrupt
            # the parent's connection state) and reopen.
            self._conn = None
        if self._conn is None:
            conn = sqlite3.connect(
                self.db_path,
                timeout=self.busy_timeout,
                isolation_level=None,  # autocommit; statements are atomic
                check_same_thread=False,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            self._conn = conn
            self._conn_pid = pid
        return self._conn

    def _execute(
        self, sql: str, parameters: tuple = ()
    ) -> sqlite3.Cursor:
        """Run one statement, retrying busy/locked errors with capped
        exponential backoff; backoff time feeds :attr:`lock_waited`."""
        deadline = time.monotonic() + self.busy_timeout
        backoff = _BACKOFF_START_SECONDS
        while True:
            try:
                return self._connection().execute(sql, parameters)
            except sqlite3.OperationalError as error:
                if not _is_busy(error) or time.monotonic() >= deadline:
                    raise
                time.sleep(backoff)
                self.lock_waited += backoff
                backoff = min(backoff * 2, _BACKOFF_MAX_SECONDS)

    # -- lifecycle ----------------------------------------------------------

    def ensure(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self._connection()

    # -- data plane ---------------------------------------------------------

    def get(self, key: str, kind: str) -> Optional[bytes]:
        try:
            row = self._execute(
                "SELECT payload FROM entries WHERE key = ? AND kind = ?",
                (key, kind),
            ).fetchone()
        except sqlite3.Error:
            # Missing directory, unreadable or corrupt database: a
            # storage-level miss, mirroring the filesystem backends.
            return None
        if row is None:
            return None
        try:
            # Touch recency so LRU eviction tracks *use*.
            self._execute(
                "UPDATE entries SET mtime = ? WHERE key = ? AND kind = ?",
                (time.time(), key, kind),
            )
        except sqlite3.Error:
            pass
        return bytes(row[0])

    def put(self, key: str, kind: str, payload: bytes) -> None:
        self._execute(
            "INSERT OR REPLACE INTO entries "
            "(key, kind, shard, payload, bytes, mtime) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                key,
                kind,
                self.shard_of(key),
                sqlite3.Binary(payload),
                len(payload),
                time.time(),
            ),
        )

    def drop(self, key: str, kind: str) -> None:
        try:
            self._execute(
                "DELETE FROM entries WHERE key = ? AND kind = ?",
                (key, kind),
            )
        except sqlite3.Error:
            pass

    # -- control plane ------------------------------------------------------

    def entries(self, shard: Optional[int] = None) -> List[StorageEntry]:
        sql = "SELECT key, kind, bytes, mtime, shard FROM entries"
        parameters: tuple = ()
        if shard is not None:
            sql += " WHERE shard = ?"
            parameters = (shard,)
        try:
            rows = self._execute(sql, parameters).fetchall()
        except sqlite3.Error:
            return []
        return [
            StorageEntry(
                key=row[0],
                kind=row[1],
                bytes=int(row[2]),
                mtime=float(row[3]),
                shard=int(row[4]),
            )
            for row in rows
        ]

    @contextmanager
    def _noop_lock(self) -> Iterator[None]:
        yield None

    def shard_lock(self, shard: int, timeout: float = 10.0):
        return self._noop_lock()

    def sweep_stale_temps(self, horizon_seconds: float) -> int:
        return 0

    def clear(self, kind: Optional[str] = None) -> int:
        try:
            if kind is None:
                cursor = self._execute("DELETE FROM entries")
            else:
                cursor = self._execute(
                    "DELETE FROM entries WHERE kind = ?", (kind,)
                )
        except sqlite3.Error:
            return 0
        return cursor.rowcount if cursor.rowcount > 0 else 0
