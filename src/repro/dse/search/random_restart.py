"""Multi-seed random restarts.

The simplest strategy that beats a truncated grid: draw uniform
random coordinates, but from ``restarts`` *independent* seeded
streams visited round-robin — one stream stuck in a poor region of
the space cannot starve the others, and adding budget extends every
restart instead of deepening one.  Each stream is seeded
deterministically from the search seed and its restart index, so the
whole schedule replays bit-identically for a given ``--search-seed``.
"""

from __future__ import annotations

from random import Random
from typing import List, Optional

from repro.dse.grid import ParameterGrid, random_point
from repro.dse.search.base import Proposal, Scorer, SearchStrategy
from repro.spark import SynthesisOutcome

#: Give up a round after this many duplicate draws per wanted sample
#: (the space is running out of unvisited coordinates).
_DRAW_ATTEMPTS = 8


class RandomRestartSearch(SearchStrategy):
    """Uniform random sampling from independent restart streams."""

    name = "random"

    def __init__(
        self,
        space: ParameterGrid,
        seed: int = 0,
        scorer: Optional[Scorer] = None,
        restarts: int = 4,
        samples_per_round: int = 8,
    ) -> None:
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        if samples_per_round < 1:
            raise ValueError(
                f"samples_per_round must be >= 1, got {samples_per_round}"
            )
        super().__init__(space, seed=seed, scorer=scorer)
        # String seeding is versioned and stable across platforms and
        # python releases, unlike hash()-derived seeds.
        self._streams = [
            Random(f"repro-dse-random:{seed}:{restart}")
            for restart in range(restarts)
        ]
        self.samples_per_round = samples_per_round
        self._round = 0
        self._exhausted = False

    def done(self) -> bool:
        return self._exhausted

    def propose(self, budget: int) -> List[Proposal]:
        if budget < 1:
            return []
        self._round += 1
        stream = self._streams[(self._round - 1) % len(self._streams)]
        target = min(budget, self.samples_per_round)
        proposals: List[Proposal] = []
        attempts = 0
        while len(proposals) < target and attempts < target * _DRAW_ATTEMPTS:
            attempts += 1
            candidate = random_point(self.space, stream)
            if self._claim(candidate):
                proposals.append(Proposal(point=candidate))
        if not proposals:
            self._exhausted = True
        return proposals

    def observe(self, proposal: Proposal, outcome: SynthesisOutcome) -> None:
        score = self.score(outcome)
        improved = self.record_best(score, proposal.point.label)
        proposal.decision = "accept" if improved else "reject"
