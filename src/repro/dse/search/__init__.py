"""Adaptive search strategies: deciding what to run next.

The paper's central claim is that the right *combination* of
coarse-grain transformations is design-dependent and must be
discovered — and the interesting knob spaces (unroll factors x
chaining x priorities x clock) explode combinatorially under the
cartesian grids ``repro dse`` started with.  This package is the
decision-making layer on top of the execution engine: a
:class:`~repro.dse.search.base.SearchStrategy` proposes corners, the
:class:`~repro.dse.runner.ExplorationEngine` evaluates them (cached,
pruned, fanned out, priority-ranked) and streams the outcomes back,
and the strategy decides where to look next.

Concrete strategies:

* :class:`~repro.dse.search.beam.BeamSearch` — mutate the best
  corners one axis at a time, late-stage axes first so proposals
  share transform-prefix stage keys;
* :class:`~repro.dse.search.random_restart.RandomRestartSearch` —
  uniform sampling from independent multi-seed restart streams;
* :class:`~repro.dse.search.anneal.SimulatedAnnealing` — a Metropolis
  chain whose temperature scales both acceptance and move size;
* :class:`~repro.dse.search.base.GridWalk` — the exhaustive sweep as
  a strategy, for baselines.

Driven from the CLI as ``repro dse design.c --vary ... --strategy
beam --search-budget 24 --search-seed 1`` or programmatically::

    from repro.dse import ExplorationEngine, grid_from_specs
    from repro.dse.grid import job_from_point
    from repro.dse.search import make_strategy

    space = grid_from_specs(["clock=2,3,4,6", "unroll=none,*:2,*:0"])
    engine = ExplorationEngine()
    result = engine.search(
        make_strategy("beam", space, seed=1),
        lambda point: job_from_point(source, point),
        budget=12,
    )
    print(result.search.counters(), result.best().label)
"""

from typing import Optional

from repro.dse.grid import ParameterGrid
from repro.dse.search.anneal import SimulatedAnnealing
from repro.dse.search.base import (
    GridWalk,
    Proposal,
    SearchReport,
    SearchStrategy,
)
from repro.dse.search.beam import BeamSearch
from repro.dse.search.random_restart import RandomRestartSearch

#: Strategy spellings accepted by :func:`make_strategy` and the CLI's
#: ``--strategy`` flag ("grid" is the plain exhaustive sweep).
STRATEGY_KINDS = ("grid", "beam", "random", "anneal")

_STRATEGIES = {
    strategy.name: strategy
    for strategy in (GridWalk, BeamSearch, RandomRestartSearch,
                     SimulatedAnnealing)
}


def make_strategy(
    kind: str,
    space: ParameterGrid,
    seed: int = 0,
    scorer: Optional[object] = None,
    **options,
) -> SearchStrategy:
    """Construct the named strategy over *space*; extra keyword
    options pass through to the strategy constructor (e.g.
    ``beam_width=4`` or ``temperature=2.0``)."""
    try:
        factory = _STRATEGIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown search strategy {kind!r}; expected one of "
            f"{', '.join(STRATEGY_KINDS)}"
        ) from None
    return factory(space, seed=seed, scorer=scorer, **options)


__all__ = [
    "BeamSearch",
    "GridWalk",
    "Proposal",
    "RandomRestartSearch",
    "STRATEGY_KINDS",
    "SearchReport",
    "SearchStrategy",
    "SimulatedAnnealing",
    "make_strategy",
]
