"""The strategy protocol: how a search decides what to run next.

A :class:`SearchStrategy` is the decision-making half of an adaptive
sweep.  The :class:`~repro.dse.runner.ExplorationEngine` owns
execution — caching, pruning, fan-out, early exit — and drives the
strategy through a strict generational loop:

1. ``propose(budget)`` returns up to *budget* :class:`Proposal`
   coordinates to evaluate next (an empty list ends the search);
2. the engine dedupes proposals against everything already settled
   this search (by cache key), evaluates the fresh ones, and feeds
   every settled outcome back through ``observe(proposal, outcome)``
   **in proposal order** — never completion order, so a pool or
   broker sweep observes exactly what a serial sweep does and a
   seeded search replays bit-identically on any executor;
3. ``done()`` lets the strategy end the search before the budget is
   spent (beam convergence, annealing freeze-out).

Strategies draw every random decision from ``self.rng``, a
``random.Random`` seeded at construction — the *only* source of
randomness, which is what makes ``--search-seed`` reproducible.  A
strategy must also never propose the same coordinate twice
(:meth:`SearchStrategy._claim` tracks that); the engine's dedupe is a
safety net that replays the recorded outcome, not an invitation to
loop.
"""

from __future__ import annotations

import abc
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.dse.grid import GridPoint, ParameterGrid
from repro.dse.pareto import scalar_score
from repro.spark import SynthesisOutcome

#: The scalar objective a strategy minimizes.
Scorer = Callable[[SynthesisOutcome], float]


@dataclass
class Proposal:
    """One corner a strategy wants evaluated.

    ``parent`` names the corner this one was mutated from (empty for
    seeds), ``priority`` is stamped onto the dispatched
    :class:`~repro.spark.SynthesisJob` so broker workers claim
    promising neighborhoods first.  ``round``/``key`` are filled in by
    the engine; ``decision`` is annotated by the strategy's
    ``observe`` (``"accept"``/``"reject"``) and lands in the search
    trace.
    """

    point: GridPoint
    parent: str = ""
    priority: int = 0
    round: int = 0
    decision: str = ""
    key: str = ""


@dataclass
class SearchReport:
    """What one strategy-driven search did, for reports and tests.

    ``trace`` records every proposal in order: round, corner label,
    parent corner, what happened to it (``run``/``cache``/``pruned``/
    ``deduped``/``withdrawn``) and the strategy's accept/reject
    decision.  The counters satisfy
    ``proposed == evaluated + pruned + deduped + withdrawn``.
    """

    strategy: str = ""
    seed: int = 0
    budget: int = 0
    rounds: int = 0
    proposed: int = 0
    deduped: int = 0
    evaluated: int = 0
    pruned: int = 0
    withdrawn: int = 0
    #: The strategy's best-scoring corner label at search end.
    best_label: str = ""
    trace: List[Dict[str, object]] = field(default_factory=list)

    @property
    def settled(self) -> int:
        """Corners that consumed search budget: evaluated (fresh or
        recalled) plus pruned.  Deduped re-proposals and withdrawn
        in-flight corners are free."""
        return self.evaluated + self.pruned

    def counters(self) -> Dict[str, int]:
        """The per-strategy counters in display order."""
        return {
            "proposed": self.proposed,
            "deduped": self.deduped,
            "pruned": self.pruned,
            "withdrawn": self.withdrawn,
            "evaluated": self.evaluated,
        }


class SearchStrategy(abc.ABC):
    """One search policy over a :class:`ParameterGrid` design space.

    The grid's axes define the *candidate values* per knob; the
    strategy decides which combinations to visit, instead of the
    cartesian product visiting all of them.
    """

    #: Stable spelling for CLIs and reports: "beam", "random", ...
    name = "strategy"

    def __init__(
        self,
        space: ParameterGrid,
        seed: int = 0,
        scorer: Optional[Scorer] = None,
    ) -> None:
        self.space = space
        self.seed = seed
        self.rng = random.Random(seed)
        self.score = scorer if scorer is not None else scalar_score
        self.best_score = math.inf
        self.best_label = ""
        self._claimed: Set[str] = set()

    @abc.abstractmethod
    def propose(self, budget: int) -> List[Proposal]:
        """Up to *budget* proposals for the next round; an empty list
        (or ``done()``) ends the search."""

    @abc.abstractmethod
    def observe(self, proposal: Proposal, outcome: SynthesisOutcome) -> None:
        """Digest one settled outcome of an earlier proposal — always
        in proposal order, and exactly once per proposal that settled
        (withdrawn in-flight proposals are never observed)."""

    def done(self) -> bool:
        """True when the strategy has converged; checked before every
        ``propose`` call."""
        return False

    # -- shared machinery ----------------------------------------------------

    def _claim(self, point: GridPoint) -> bool:
        """Reserve *point* for proposal; False when this strategy has
        already proposed it (never propose a coordinate twice)."""
        label = point.label
        if label in self._claimed:
            return False
        self._claimed.add(label)
        return True

    def record_best(self, score: float, label: str) -> bool:
        """Track the best scalar score seen; True on strict
        improvement."""
        if score < self.best_score:
            self.best_score = score
            self.best_label = label
            return True
        return False


class GridWalk(SearchStrategy):
    """The exhaustive cartesian sweep expressed as a strategy: every
    grid point in deterministic row-major order, budget-capped.

    Exists as the baseline competitor for benchmarks and tests —
    ``repro dse`` without a strategy still runs the plain engine
    sweep, which is equivalent and cheaper."""

    name = "grid"

    def __init__(
        self,
        space: ParameterGrid,
        seed: int = 0,
        scorer: Optional[Scorer] = None,
    ) -> None:
        super().__init__(space, seed=seed, scorer=scorer)
        self._points = space.points()
        self._cursor = 0

    def done(self) -> bool:
        return self._cursor >= len(self._points)

    def propose(self, budget: int) -> List[Proposal]:
        chunk = self._points[self._cursor : self._cursor + max(budget, 0)]
        self._cursor += len(chunk)
        return [Proposal(point=point) for point in chunk]

    def observe(self, proposal: Proposal, outcome: SynthesisOutcome) -> None:
        score = self.score(outcome)
        improved = self.record_best(score, proposal.point.label)
        proposal.decision = "accept" if improved else "reject"
