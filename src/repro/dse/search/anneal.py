"""Simulated annealing over script knobs.

A single Metropolis chain with a geometric temperature schedule: each
round proposes ``moves_per_round`` perturbations of the current
corner, and ``observe`` walks them in proposal order — accepting
improvements always, and uphill moves with probability
``exp(-delta / (T * |current|))`` (the relative normalization keeps
one acceptance rule meaningful whether latencies are 8 or 8000).

Temperature also shapes the *moves*: while hot, a perturbation may
rebind an axis to any candidate value (long jumps out of local
minima); as the chain cools, moves shrink to axis *neighbors*
(:func:`~repro.dse.grid.axis_neighbor_values`) and mutated axes are
drawn late-stage-first, so cold-phase proposals share transform
prefixes with the current corner and run mostly out of the stage
cache.  The search freezes out when the temperature falls below
``floor``.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.dse.grid import (
    GridPoint,
    ParameterGrid,
    axes_late_first,
    axis_neighbor_values,
    first_point,
    mutate_point,
    random_point,
)
from repro.dse.search.base import Proposal, Scorer, SearchStrategy
from repro.spark import SynthesisOutcome

#: Give up a round after this many duplicate perturbations per wanted
#: move (the neighborhood is exhausted).
_MOVE_ATTEMPTS = 8


class SimulatedAnnealing(SearchStrategy):
    """Metropolis chain with temperature-scaled knob perturbation."""

    name = "anneal"

    def __init__(
        self,
        space: ParameterGrid,
        seed: int = 0,
        scorer: Optional[Scorer] = None,
        temperature: float = 1.0,
        cooling: float = 0.85,
        floor: float = 0.05,
        moves_per_round: int = 4,
    ) -> None:
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        if not 0 < cooling < 1:
            raise ValueError(f"cooling must be in (0, 1), got {cooling}")
        if floor <= 0:
            raise ValueError(f"floor must be positive, got {floor}")
        if moves_per_round < 1:
            raise ValueError(
                f"moves_per_round must be >= 1, got {moves_per_round}"
            )
        super().__init__(space, seed=seed, scorer=scorer)
        self.initial_temperature = temperature
        self.temperature = temperature
        self.cooling = cooling
        self.floor = floor
        self.moves_per_round = moves_per_round
        self._round = 0
        self._current_score = math.inf
        self._current_label = ""
        self._current_point: Optional[GridPoint] = None
        self._exhausted = False

    def done(self) -> bool:
        return self._exhausted or self.temperature < self.floor

    def propose(self, budget: int) -> List[Proposal]:
        if budget < 1:
            return []
        if self._round > 0:
            self.temperature *= self.cooling
            if self.temperature < self.floor:
                return []
        self._round += 1
        target = min(budget, self.moves_per_round)
        if self._current_point is None:
            return self._seed_proposals(target)
        proposals: List[Proposal] = []
        attempts = 0
        while len(proposals) < target and attempts < target * _MOVE_ATTEMPTS:
            attempts += 1
            candidate = self._perturb(self._current_point)
            if candidate is not None and self._claim(candidate):
                proposals.append(
                    Proposal(point=candidate, parent=self._current_label)
                )
        if not proposals:
            self._exhausted = True
        return proposals

    def observe(self, proposal: Proposal, outcome: SynthesisOutcome) -> None:
        score = self.score(outcome)
        if not math.isinf(score):
            self.record_best(score, proposal.point.label)
        if math.isinf(score):
            proposal.decision = "reject"
            return
        if self._current_point is None:
            self._accept(score, proposal)
            return
        delta = score - self._current_score
        if delta <= 0:
            self._accept(score, proposal)
            return
        scale = max(abs(self._current_score), 1e-9)
        threshold = math.exp(-delta / (self.temperature * scale))
        if self.rng.random() < threshold:
            self._accept(score, proposal)
        else:
            proposal.decision = "reject"

    def _accept(self, score: float, proposal: Proposal) -> None:
        self._current_score = score
        self._current_label = proposal.point.label
        self._current_point = proposal.point
        proposal.decision = "accept"

    def _heat(self) -> float:
        """The schedule position in [0, 1]: 1 fully hot, -> 0 frozen."""
        return self.temperature / self.initial_temperature

    def _perturb(self, point: GridPoint) -> Optional[GridPoint]:
        """One temperature-scaled move off *point*: mutate one axis
        (two while hot), long jumps hot, neighbor steps cold."""
        axes = axes_late_first(self.space)
        if not axes:
            return None
        heat = self._heat()
        width = 1 + (1 if len(axes) > 1 and self.rng.random() < heat else 0)
        # Hot chains pick axes uniformly; cold chains bias toward the
        # front of the late-stage-first ordering so moves stay inside
        # the current transform prefix.
        chosen: List[str] = []
        for _ in range(width):
            if self.rng.random() < heat:
                axis = self.rng.choice(axes)
            else:
                axis = axes[min(self.rng.randrange(2), len(axes) - 1)]
            if axis not in chosen:
                chosen.append(axis)
        values_by_axis = dict(self.space.axes)
        mutated = point
        for axis in chosen:
            candidates = values_by_axis[axis]
            current = mutated.as_dict()[axis]
            if self.rng.random() < heat:
                options = [v for v in candidates if v != current]
            else:
                options = axis_neighbor_values(axis, current, candidates)
            if not options:
                continue
            mutated = mutate_point(mutated, axis, self.rng.choice(options))
        return mutated if mutated != point else None

    def _seed_proposals(self, target: int) -> List[Proposal]:
        seeds: List[Proposal] = []
        anchor = first_point(self.space)
        if self._claim(anchor):
            seeds.append(Proposal(point=anchor))
        misses = 0
        while len(seeds) < target and misses < _MOVE_ATTEMPTS:
            candidate = random_point(self.space, self.rng)
            if self._claim(candidate):
                seeds.append(Proposal(point=candidate))
                misses = 0
            else:
                misses += 1
        if not seeds:
            self._exhausted = True
        return seeds
