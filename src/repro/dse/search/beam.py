"""Beam search over knob neighborhoods.

Keeps the ``beam_width`` best corners seen so far and, each round,
proposes their one-axis mutations (:func:`~repro.dse.grid.mutate_point`
over :func:`~repro.dse.grid.axis_neighbor_values`).  Two choices make
the beam cheap on this engine:

* **late-stage axes mutate first**
  (:func:`~repro.dse.grid.axes_late_first`): a schedule-stage mutation
  (clock, limits, priority) shares the parent's transform-prefix stage
  key, so sibling proposals recall the parent's frontend/transform
  snapshots from the artifact cache instead of recomputing them;
* **priority escalation**: children of higher-ranked beam members
  carry higher :attr:`~repro.spark.SynthesisJob.priority`, so broker
  workers claim the most promising neighborhoods first.

The search converges when ``patience`` consecutive rounds fail to
admit a new beam member, or when the beam's whole neighborhood has
been proposed.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.dse.grid import (
    GridPoint,
    ParameterGrid,
    axes_late_first,
    axis_neighbor_values,
    first_point,
    mutate_point,
    random_point,
)
from repro.dse.search.base import Proposal, Scorer, SearchStrategy
from repro.spark import SynthesisOutcome

#: Give up drawing fresh random seed points after this many collisions
#: in a row (tiny spaces run out of distinct coordinates).
_SEED_ATTEMPTS = 16


class BeamSearch(SearchStrategy):
    """Beam search: mutate the best corners one axis at a time."""

    name = "beam"

    def __init__(
        self,
        space: ParameterGrid,
        seed: int = 0,
        scorer: Optional[Scorer] = None,
        beam_width: int = 3,
        patience: int = 2,
    ) -> None:
        if beam_width < 1:
            raise ValueError(f"beam_width must be >= 1, got {beam_width}")
        if patience < 0:
            raise ValueError(f"patience must be >= 0, got {patience}")
        super().__init__(space, seed=seed, scorer=scorer)
        self.beam_width = beam_width
        self.patience = patience
        #: The beam: (score, label) entries, best first after sorting;
        #: points keyed by label so entries stay orderable.
        self._beam: List[tuple] = []
        self._points: Dict[str, GridPoint] = {}
        self._round = 0
        self._stall = 0
        self._admitted = False
        self._exhausted = False

    def done(self) -> bool:
        return self._exhausted or self._stall > self.patience

    def propose(self, budget: int) -> List[Proposal]:
        if budget < 1:
            return []
        self._round += 1
        if self._round > 1:
            self._stall = 0 if self._admitted else self._stall + 1
            if self._stall > self.patience:
                return []
        self._admitted = False
        if not self._beam:
            # Round one — or every prior proposal was infeasible: seed
            # (again) from the origin corner plus random draws.
            return self._seed_proposals(budget)
        proposals: List[Proposal] = []
        ranked = sorted(self._beam)
        values_by_axis = dict(self.space.axes)
        # Outer loop over axes latest-stage-first: when the budget
        # truncates the neighborhood, the proposals that survive are
        # the ones sharing transform prefixes with their parents.
        for axis in axes_late_first(self.space):
            for rank, (_score, label) in enumerate(ranked):
                parent = self._points[label]
                current = parent.as_dict()[axis]
                for value in axis_neighbor_values(
                    axis, current, values_by_axis[axis]
                ):
                    candidate = mutate_point(parent, axis, value)
                    if not self._claim(candidate):
                        continue
                    proposals.append(
                        Proposal(
                            point=candidate,
                            parent=label,
                            priority=len(ranked) - rank,
                        )
                    )
                    if len(proposals) >= budget:
                        return proposals
        if not proposals:
            self._exhausted = True
        return proposals

    def observe(self, proposal: Proposal, outcome: SynthesisOutcome) -> None:
        score = self.score(outcome)
        if math.isinf(score):
            proposal.decision = "reject"
            return
        self.record_best(score, proposal.point.label)
        entry = (score, proposal.point.label)
        if len(self._beam) < self.beam_width:
            self._admit(entry, proposal)
            return
        worst = max(self._beam)
        if entry < worst:
            self._beam.remove(worst)
            del self._points[worst[1]]
            self._admit(entry, proposal)
            return
        proposal.decision = "reject"

    def _admit(self, entry: tuple, proposal: Proposal) -> None:
        self._beam.append(entry)
        self._points[entry[1]] = proposal.point
        self._admitted = True
        proposal.decision = "accept"

    def _seed_proposals(self, budget: int) -> List[Proposal]:
        seeds: List[Proposal] = []
        anchor = first_point(self.space)
        if self._claim(anchor):
            seeds.append(Proposal(point=anchor))
        misses = 0
        while len(seeds) < min(self.beam_width, budget):
            candidate = random_point(self.space, self.rng)
            if self._claim(candidate):
                seeds.append(Proposal(point=candidate))
                misses = 0
            else:
                misses += 1
                if misses >= _SEED_ATTEMPTS:
                    break
        if not seeds:
            self._exhausted = True
        return seeds[:budget]
