"""The shared outcome-cache service: locking, indexing, LRU eviction.

Multiple exploration engines — across processes and across machines
sharing a filesystem — point at one cache directory via
``$REPRO_DSE_CACHE``.  The storage layer (:mod:`repro.dse.cache`)
already makes individual writes safe (atomic temp-file renames) and
individual reads self-healing (corrupt entries drop as misses); this
module adds the *directory-level* operations that need coordination:

* :class:`DirectoryLock` — an advisory exclusive lock
  (``flock``-based where available, ``O_EXCL`` spin-lock fallback)
  so maintenance never races maintenance;
* :class:`CacheService` — stats, clear and size-bounded LRU garbage
  collection over the shared directory, plus a materialized index
  (``index.meta``, rewritten by ``gc``/``reindex``) so ``repro cache
  stats --fast`` on a million-entry cache does not re-stat the world.

The directory holds two kinds of entries under one budget: outcome
records (``<sha>.json``) and the staged flow's pickled stage
artifacts (``<sha>.stage.pkl``, written by
:class:`repro.flow.artifacts.StageArtifactStore`).  Recency is
tracked through entry mtimes: :meth:`ResultCache.get` and the stage
store both touch an entry on every hit, so ``gc`` evicting
oldest-mtime-first is least-recently-*used*, not
least-recently-written.  Eviction and concurrent sweeps compose
safely: a reader that loses an entry mid-read sees an ordinary miss
and re-synthesizes (or re-runs the stage).

The size budget comes from ``--max-bytes``, the
``$REPRO_DSE_CACHE_MAX_BYTES`` environment variable, or a 256 MiB
default, in that order.  When the environment variable is set, the
exploration engine also garbage-collects opportunistically after
every sweep.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.dse.cache import default_cache_dir
from repro.flow.artifacts import STAGE_SUFFIX

try:  # POSIX only; the spin-lock fallback covers the rest.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Environment variable bounding the shared cache size in bytes.
MAX_BYTES_ENV_VAR = "REPRO_DSE_CACHE_MAX_BYTES"

#: Default size budget when neither the argument nor the environment
#: variable is set.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Materialized index file name.  Deliberately *not* ``*.json`` so the
#: storage layer's entry globs never mistake it for an outcome.
INDEX_NAME = "index.meta"

LOCK_NAME = ".lock"

#: Orphaned temp files (a worker died mid-write) older than this are
#: swept by ``gc``.
STALE_TEMP_SECONDS = 3600.0


class CacheLockTimeout(TimeoutError):
    """Raised when the directory lock cannot be acquired in time."""


def _env_max_bytes() -> int:
    """``$REPRO_DSE_CACHE_MAX_BYTES`` as an int, or the default when
    unset, unparseable or non-positive (a typo'd budget must degrade,
    not crash a sweep — or worse, silently wipe the shared cache on
    every auto-gc)."""
    env = os.environ.get(MAX_BYTES_ENV_VAR, "")
    try:
        value = int(env)
    except ValueError:
        return DEFAULT_MAX_BYTES
    return value if value > 0 else DEFAULT_MAX_BYTES


class DirectoryLock:
    """Advisory exclusive lock over one cache directory.

    Uses ``flock`` on a sentinel file where available (locks die with
    the holder, so a crashed process never wedges the cache, and
    exclusion is kernel-enforced).  Elsewhere it falls back to an
    ``O_CREAT|O_EXCL`` spin lock where a lock file older than
    ``stale_after`` seconds is treated as abandoned by a crashed
    holder and broken.  The fallback is best-effort advisory locking:
    age is the only liveness signal, so a holder that legitimately
    works longer than ``stale_after`` (default: one hour) can be
    broken, and the break/restore dance has a narrow theoretical race
    window — acceptable for cache maintenance, where the protected
    operations are themselves crash-safe (atomic renames, and readers
    treat missing entries as misses)."""

    def __init__(
        self,
        root: Union[str, Path],
        timeout: float = 10.0,
        poll: float = 0.05,
        stale_after: float = 3600.0,
    ) -> None:
        self.root = Path(root)
        self.timeout = timeout
        self.poll = poll
        self.stale_after = stale_after
        self._fd: Optional[int] = None
        self._spin_path: Optional[Path] = None

    def acquire(self) -> None:
        deadline = time.monotonic() + self.timeout
        lock_path = self.root / LOCK_NAME
        if fcntl is not None:
            fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return
                except OSError:
                    if time.monotonic() >= deadline:
                        os.close(fd)
                        raise CacheLockTimeout(
                            f"cache lock busy for {self.timeout:.1f}s: "
                            f"{lock_path}"
                        ) from None
                    time.sleep(self.poll)
        spin_path = self.root / (LOCK_NAME + ".pid")
        while True:
            try:
                fd = os.open(
                    spin_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                self._spin_path = spin_path
                return
            except FileExistsError:
                self._break_stale_spin_lock(spin_path)
                if time.monotonic() >= deadline:
                    raise CacheLockTimeout(
                        f"cache lock busy for {self.timeout:.1f}s: "
                        f"{spin_path}"
                    ) from None
                time.sleep(self.poll)

    def _break_stale_spin_lock(self, spin_path: Path) -> None:
        """Remove a spin-lock file abandoned by a crashed holder (no
        living process refreshes it, so age is the only signal).

        Breaking happens by atomic *rename* to a per-breaker grave
        name, never by direct unlink: when several waiters decide the
        lock is stale at once, exactly one rename succeeds, so two
        waiters can never each remove a lock file (the classic
        stat-then-unlink race that would let two of them acquire).
        After winning the rename the age is re-checked; a lock that
        turns out to be live (replaced between stat and rename) is
        restored via ``os.link``, which fails harmlessly if a newer
        holder has taken the slot meanwhile."""
        try:
            if time.time() - spin_path.stat().st_mtime <= self.stale_after:
                return
        except OSError:  # already released
            return
        grave = spin_path.with_name(
            f"{spin_path.name}.broken-{os.getpid()}"
        )
        try:
            os.rename(spin_path, grave)
        except OSError:  # another waiter broke it (or it was released)
            return
        try:
            stolen_live = (
                time.time() - grave.stat().st_mtime <= self.stale_after
            )
        except OSError:
            stolen_live = False
        if stolen_live:
            try:
                os.link(grave, spin_path)
            except OSError:
                pass
        try:
            grave.unlink()
        except OSError:
            pass

    def release(self) -> None:
        if self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)  # type: ignore[union-attr]
            finally:
                os.close(self._fd)
                self._fd = None
        if self._spin_path is not None:
            try:
                self._spin_path.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
            self._spin_path = None

    def __enter__(self) -> "DirectoryLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


@dataclass(frozen=True)
class CacheEntry:
    """One indexed outcome file."""

    key: str
    path: Path
    bytes: int
    mtime: float


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time view of the shared cache."""

    root: Path
    entries: int
    total_bytes: int
    max_bytes: int

    @property
    def utilization(self) -> float:
        if self.max_bytes <= 0:
            return 0.0
        return self.total_bytes / self.max_bytes

    def describe(self) -> str:
        return (
            f"cache {self.root}\n"
            f"  entries:     {self.entries}\n"
            f"  total bytes: {self.total_bytes}\n"
            f"  size budget: {self.max_bytes} "
            f"({self.utilization:.1%} used)"
        )


@dataclass(frozen=True)
class GCReport:
    """What one garbage collection did."""

    examined: int
    evicted: int
    freed_bytes: int
    kept_bytes: int
    stale_temps: int

    def describe(self) -> str:
        return (
            f"gc: examined {self.examined} entries, evicted "
            f"{self.evicted} ({self.freed_bytes} bytes), kept "
            f"{self.kept_bytes} bytes, swept {self.stale_temps} "
            f"stale temp file(s)"
        )


class CacheService:
    """Maintenance operations over one shared cache directory."""

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        max_bytes: Optional[int] = None,
        lock_timeout: float = 10.0,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is None:
            max_bytes = _env_max_bytes()
        self.max_bytes = max_bytes
        self.lock_timeout = lock_timeout

    def lock(self) -> DirectoryLock:
        return DirectoryLock(self.root, timeout=self.lock_timeout)

    def entries(self) -> List[CacheEntry]:
        """Every cache entry, by key: outcome files (``<sha>.json``)
        and the staged flow's pickled stage artifacts
        (``<sha>.stage.pkl``), which the same lock/stats/gc/clear
        operations govern — an evicted artifact simply reads as a
        stage miss and recomputes.  Entries vanishing mid-scan (a
        concurrent gc or clear) are skipped."""
        found: List[CacheEntry] = []
        candidates = [
            (path, path.stem)
            for path in self.root.glob("*.json")
            if len(path.stem) == 64  # a SHA-256 outcome file
        ]
        candidates.extend(
            (path, path.name)
            for path in self.root.glob(f"*{STAGE_SUFFIX}")
            if len(path.name) == 64 + len(STAGE_SUFFIX)
        )
        for path, key in candidates:
            try:
                stat = path.stat()
            except OSError:
                continue
            found.append(
                CacheEntry(
                    key=key,
                    path=path,
                    bytes=stat.st_size,
                    mtime=stat.st_mtime,
                )
            )
        return found

    def stats(self, fast: bool = False) -> CacheStats:
        """A view of the cache: live (re-stat every entry) by default,
        or from the materialized index of the last gc/``reindex`` when
        *fast* — O(1) on a huge shared cache, possibly stale.  Falls
        back to the live scan when no index exists yet."""
        if fast:
            index = self.read_index()
            if index is not None:
                return CacheStats(
                    root=self.root,
                    entries=len(index.get("entries", {})),
                    total_bytes=int(index.get("total_bytes", 0)),
                    max_bytes=self.max_bytes,
                )
        entries = self.entries()
        return CacheStats(
            root=self.root,
            entries=len(entries),
            total_bytes=sum(entry.bytes for entry in entries),
            max_bytes=self.max_bytes,
        )

    def clear(self) -> int:
        """Drop every entry (and the index) under the lock; returns
        the number of entries removed."""
        with self.lock():
            removed = 0
            for entry in self.entries():
                try:
                    entry.path.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                (self.root / INDEX_NAME).unlink()
            except OSError:
                pass
            return removed

    def gc(self) -> GCReport:
        """Enforce the size budget: evict least-recently-used entries
        until the survivors fit, sweep stale temp files, rewrite the
        index.  Runs under the directory lock."""
        with self.lock():
            entries = sorted(
                self.entries(), key=lambda e: e.mtime, reverse=True
            )
            kept: List[CacheEntry] = []
            kept_bytes = 0
            evicted = 0
            freed = 0
            for entry in entries:  # newest first: keep while we fit
                if kept_bytes + entry.bytes <= self.max_bytes:
                    kept.append(entry)
                    kept_bytes += entry.bytes
                    continue
                try:
                    entry.path.unlink()
                    evicted += 1
                    freed += entry.bytes
                except OSError:
                    pass
            stale = self._sweep_stale_temps()
            self._write_index(kept)
            return GCReport(
                examined=len(entries),
                evicted=evicted,
                freed_bytes=freed,
                kept_bytes=kept_bytes,
                stale_temps=stale,
            )

    def reindex(self) -> int:
        """Rewrite the materialized index from the directory contents
        (under the lock); returns the number of entries indexed."""
        with self.lock():
            entries = self.entries()
            self._write_index(entries)
            return len(entries)

    def read_index(self) -> Optional[dict]:
        """The last materialized index, or None when absent/corrupt."""
        try:
            with open(
                self.root / INDEX_NAME, "r", encoding="utf-8"
            ) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # -- internals ----------------------------------------------------------

    def _write_index(self, entries: List[CacheEntry]) -> None:
        index = {
            "format": 1,
            "max_bytes": self.max_bytes,
            "total_bytes": sum(entry.bytes for entry in entries),
            "entries": {
                entry.key: {"bytes": entry.bytes, "mtime": entry.mtime}
                for entry in entries
            },
        }
        temp = self.root / (INDEX_NAME + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(index, handle, sort_keys=True)
        os.replace(temp, self.root / INDEX_NAME)

    def _sweep_stale_temps(self) -> int:
        """Remove orphaned temp files from crashed writers."""
        horizon = time.time() - STALE_TEMP_SECONDS
        swept = 0
        for path in self.root.glob(".tmp-*"):
            try:
                if path.stat().st_mtime < horizon:
                    path.unlink()
                    swept += 1
            except OSError:
                continue
        return swept


def maybe_auto_gc(root: Union[str, Path]) -> Optional[GCReport]:
    """Opportunistic post-sweep garbage collection: runs only when
    ``$REPRO_DSE_CACHE_MAX_BYTES`` asks for a bounded cache, and never
    lets maintenance trouble (lock contention, races) fail a sweep."""
    if not os.environ.get(MAX_BYTES_ENV_VAR):
        return None
    try:
        return CacheService(root, lock_timeout=1.0).gc()
    except Exception:
        return None
