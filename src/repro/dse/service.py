"""The shared outcome-cache service: locking, indexing, LRU eviction.

Multiple exploration engines — across processes and across machines
sharing a filesystem — point at one cache location via
``$REPRO_DSE_CACHE``.  The storage layer (:mod:`repro.dse.storage`)
already makes individual writes safe (atomic puts) and individual
reads self-healing (corrupt entries drop as misses); this module adds
the *maintenance* operations that need coordination:

* :class:`CacheService` — stats, clear and size-bounded LRU garbage
  collection over any storage backend, plus a materialized index
  (``index.meta`` on the filesystem backends, rewritten by
  ``gc``/``reindex``) so ``repro cache stats --fast`` on a
  million-entry cache does not re-stat the world.

Maintenance is **shard-scoped**: the backend partitions the key space
(16 ways on the default layouts, one shard on the legacy flat
layout), the global byte budget splits across shards so the per-shard
budgets sum exactly to the whole
(:func:`repro.dse.storage.shard_budgets`), and gc/clear hold one
shard's lock at a time — maintenance on one shard never blocks sweeps
touching the other fifteen.  :meth:`CacheService.stats` is entirely
**lock-free**: observability must never stall a running sweep, so
stats reads the live enumeration (or the index) without touching any
lock, accepting a momentarily-racy count.

The service stores two kinds of entries under one budget: outcome
records and the staged flow's pickled stage artifacts (written by
:class:`repro.flow.artifacts.StageArtifactStore`).  Recency is
tracked by the backend on every hit, so ``gc`` evicting oldest-first
is least-recently-*used*, not least-recently-written.  Eviction and
concurrent sweeps compose safely: a reader that loses an entry
mid-read sees an ordinary miss and re-synthesizes (or re-runs the
stage).

The size budget comes from ``--max-bytes``, the
``$REPRO_DSE_CACHE_MAX_BYTES`` environment variable, or a 256 MiB
default, in that order.  When the environment variable is set, the
exploration engine also garbage-collects opportunistically after
every sweep.

:class:`DirectoryLock` and :class:`CacheLockTimeout` moved to
:mod:`repro.dse.storage.locks` when locking became shard-scoped;
they are re-exported here under their historical names.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.dse.cache import default_cache_dir
from repro.dse.storage import (
    INDEX_NAME,
    LOCK_NAME,
    CacheLockTimeout,
    DirectoryLock,
    StorageBackend,
    StorageEntry,
    make_backend,
    shard_budgets,
)

__all__ = [
    "CacheLockTimeout",
    "CacheService",
    "CacheStats",
    "DirectoryLock",
    "GCReport",
    "INDEX_NAME",
    "LOCK_NAME",
    "MAX_BYTES_ENV_VAR",
    "DEFAULT_MAX_BYTES",
    "STALE_TEMP_SECONDS",
    "ShardGC",
    "maybe_auto_gc",
]

#: Environment variable bounding the shared cache size in bytes.
MAX_BYTES_ENV_VAR = "REPRO_DSE_CACHE_MAX_BYTES"

#: Default size budget when neither the argument nor the environment
#: variable is set.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Orphaned temp files (a worker died mid-write) older than this are
#: swept by ``gc``.
STALE_TEMP_SECONDS = 3600.0


def _env_max_bytes() -> int:
    """``$REPRO_DSE_CACHE_MAX_BYTES`` as an int, or the default when
    unset, unparseable or non-positive (a typo'd budget must degrade,
    not crash a sweep — or worse, silently wipe the shared cache on
    every auto-gc)."""
    env = os.environ.get(MAX_BYTES_ENV_VAR, "")
    try:
        value = int(env)
    except ValueError:
        return DEFAULT_MAX_BYTES
    return value if value > 0 else DEFAULT_MAX_BYTES


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time view of the shared cache."""

    root: Path
    entries: int
    total_bytes: int
    max_bytes: int
    backend: str = "fs"
    shards: int = 16

    @property
    def utilization(self) -> float:
        if self.max_bytes <= 0:
            return 0.0
        return self.total_bytes / self.max_bytes

    def describe(self) -> str:
        return (
            f"cache {self.root}\n"
            f"  backend:     {self.backend} ({self.shards} shard(s))\n"
            f"  entries:     {self.entries}\n"
            f"  total bytes: {self.total_bytes}\n"
            f"  size budget: {self.max_bytes} "
            f"({self.utilization:.1%} used)"
        )


@dataclass(frozen=True)
class ShardGC:
    """One shard's slice of a garbage collection."""

    shard: int
    budget: int
    examined: int
    evicted: int
    freed_bytes: int
    kept_bytes: int


@dataclass(frozen=True)
class GCReport:
    """What one garbage collection did.  The per-shard breakdown in
    :attr:`shards` always reconciles with the totals: budgets sum to
    the global ``max_bytes``, and examined/evicted/freed/kept sum to
    the headline numbers."""

    examined: int
    evicted: int
    freed_bytes: int
    kept_bytes: int
    stale_temps: int
    shards: Tuple[ShardGC, ...] = field(default=())

    def describe(self) -> str:
        return (
            f"gc: examined {self.examined} entries, evicted "
            f"{self.evicted} ({self.freed_bytes} bytes), kept "
            f"{self.kept_bytes} bytes, swept {self.stale_temps} "
            f"stale temp file(s) across {max(len(self.shards), 1)} "
            f"shard(s)"
        )


class CacheService:
    """Maintenance operations over one shared cache backend.

    *root* accepts a plain directory (the default sharded filesystem
    backend), a backend spec string such as ``sqlite:<dir>``, or an
    already-constructed backend instance; an explicit *backend* kind
    (from ``repro cache --backend``) overrides a spec prefix.
    """

    def __init__(
        self,
        root: Union[str, Path, StorageBackend, None] = None,
        max_bytes: Optional[int] = None,
        lock_timeout: float = 10.0,
        backend: Optional[str] = None,
    ) -> None:
        location: Union[str, Path, StorageBackend] = (
            root if root is not None else default_cache_dir()
        )
        self.backend = make_backend(location, kind=backend)
        self.backend.ensure()
        self.root = self.backend.root
        if max_bytes is None:
            max_bytes = _env_max_bytes()
        self.max_bytes = max_bytes
        self.lock_timeout = lock_timeout

    def lock(self) -> DirectoryLock:
        """An exclusive lock over the backend root — for *external*
        coordination only; no service operation takes it (stats is
        lock-free, gc/clear hold per-shard locks)."""
        return DirectoryLock(self.root, timeout=self.lock_timeout)

    def entries(self) -> List[StorageEntry]:
        """Every cache entry — outcome records and the staged flow's
        pickled stage artifacts, which the same stats/gc/clear
        operations govern (an evicted artifact simply reads as a
        stage miss and recomputes).  Enumerated lock-free; entries
        vanishing mid-scan (a concurrent gc or clear) are skipped."""
        return self.backend.entries()

    def stats(self, fast: bool = False) -> CacheStats:
        """A view of the cache: live (re-enumerate every entry) by
        default, or from the materialized index of the last
        gc/``reindex`` when *fast* — O(1) on a huge shared cache,
        possibly stale.  Falls back to the live scan when no index
        exists (the sqlite backend keeps none; its live enumeration
        is already one aggregate query away).

        Deliberately **lock-free** either way: ``repro cache stats``
        is observability, and observability must never stall — or be
        stalled by — a running sweep or gc.  The cost is a
        momentarily-racy count when maintenance is concurrently
        rewriting the cache; that is the right trade for a
        monitoring read."""
        if fast:
            index = self.backend.read_index()
            if index is not None:
                return CacheStats(
                    root=self.root,
                    entries=len(index.get("entries", {})),
                    total_bytes=int(index.get("total_bytes", 0)),
                    max_bytes=self.max_bytes,
                    backend=self.backend.kind,
                    shards=self.backend.num_shards,
                )
        entries = self.entries()
        return CacheStats(
            root=self.root,
            entries=len(entries),
            total_bytes=sum(entry.bytes for entry in entries),
            max_bytes=self.max_bytes,
            backend=self.backend.kind,
            shards=self.backend.num_shards,
        )

    def clear(self) -> int:
        """Drop every entry (and the index), one shard lock at a
        time; returns the number of entries removed."""
        removed = 0
        for shard in range(self.backend.num_shards):
            with self.backend.shard_lock(
                shard, timeout=self.lock_timeout
            ):
                for entry in self.backend.entries(shard=shard):
                    self.backend.drop(entry.key, entry.kind)
                    removed += 1
        self._drop_index()
        return removed

    def gc(self) -> GCReport:
        """Enforce the size budget: split it across shards
        (:func:`repro.dse.storage.shard_budgets` — the slices sum
        exactly to ``max_bytes``), evict least-recently-used entries
        within each shard until the survivors fit its slice, sweep
        stale temp files, rewrite the index.  Holds one shard's lock
        at a time, so gc never serializes the whole cache behind a
        single lock."""
        budgets = shard_budgets(self.max_bytes, self.backend.num_shards)
        kept_entries: List[StorageEntry] = []
        per_shard: List[ShardGC] = []
        for shard, budget in enumerate(budgets):
            with self.backend.shard_lock(
                shard, timeout=self.lock_timeout
            ):
                entries = sorted(
                    self.backend.entries(shard=shard),
                    key=lambda e: e.mtime,
                    reverse=True,
                )
                kept_bytes = 0
                evicted = 0
                freed = 0
                for entry in entries:  # newest first: keep while we fit
                    if kept_bytes + entry.bytes <= budget:
                        kept_entries.append(entry)
                        kept_bytes += entry.bytes
                        continue
                    self.backend.drop(entry.key, entry.kind)
                    evicted += 1
                    freed += entry.bytes
                per_shard.append(
                    ShardGC(
                        shard=shard,
                        budget=budget,
                        examined=len(entries),
                        evicted=evicted,
                        freed_bytes=freed,
                        kept_bytes=kept_bytes,
                    )
                )
        stale = self.backend.sweep_stale_temps(STALE_TEMP_SECONDS)
        self._write_index(kept_entries)
        return GCReport(
            examined=sum(s.examined for s in per_shard),
            evicted=sum(s.evicted for s in per_shard),
            freed_bytes=sum(s.freed_bytes for s in per_shard),
            kept_bytes=sum(s.kept_bytes for s in per_shard),
            stale_temps=stale,
            shards=tuple(per_shard),
        )

    def reindex(self) -> int:
        """Rewrite the materialized index from the live contents
        (shard locks held one at a time); returns the number of
        entries indexed."""
        collected: List[StorageEntry] = []
        for shard in range(self.backend.num_shards):
            with self.backend.shard_lock(
                shard, timeout=self.lock_timeout
            ):
                collected.extend(self.backend.entries(shard=shard))
        self._write_index(collected)
        return len(collected)

    def read_index(self) -> Optional[dict]:
        """The last materialized index, or None when absent/corrupt
        (or when the backend keeps none)."""
        return self.backend.read_index()

    # -- internals ----------------------------------------------------------

    def _write_index(self, entries: List[StorageEntry]) -> None:
        self.backend.write_index(
            {
                "format": 2,
                "backend": self.backend.kind,
                "max_bytes": self.max_bytes,
                "total_bytes": sum(entry.bytes for entry in entries),
                "entries": {
                    entry.index_key: {
                        "bytes": entry.bytes,
                        "mtime": entry.mtime,
                        "shard": entry.shard,
                    }
                    for entry in entries
                },
            }
        )

    def _drop_index(self) -> None:
        drop = getattr(self.backend, "drop_index", None)
        if drop is not None:
            drop()


def maybe_auto_gc(
    root: Union[str, Path, StorageBackend],
    backend: Optional[str] = None,
) -> Optional[GCReport]:
    """Opportunistic post-sweep garbage collection: runs only when
    ``$REPRO_DSE_CACHE_MAX_BYTES`` asks for a bounded cache, and never
    lets maintenance trouble (lock contention, races) fail a sweep.
    *root* accepts a backend instance (the engine passes its cache's
    backend so the selected kind is honored)."""
    if not os.environ.get(MAX_BYTES_ENV_VAR):
        return None
    try:
        return CacheService(
            root, lock_timeout=1.0, backend=backend
        ).gc()
    except Exception:
        return None
