"""Pareto-front tracking, sweep goals and dominance pruning.

The paper's designer loop is a trade-off search: "sweep scripts, keep
the schedule that meets the latency target at least area".  This
module gives the exploration engine the three pieces that turn an
exhaustive sweep into an adaptive one:

* :class:`ParetoFront` — the set of feasible outcomes no other
  outcome beats on both latency and area, maintained incrementally as
  results stream in;
* :class:`SweepGoal` — the designer's stopping rule
  (``--target-latency`` / ``--max-area``): once a feasible point
  satisfies every set constraint, the rest of the sweep is redundant;
* :class:`InfeasiblePruner` — provable dominance pruning over
  *pending* corners.  The scheduler's constraint failures are monotone
  in the two constraint knobs: a point that fails to schedule keeps
  failing when the clock gets shorter or the resource allocation gets
  smaller (``SchedulingError`` fires when an operation's delay exceeds
  the clock, or its unit needs exceed the allocation, in an *empty*
  state — both only get worse).  So once a corner fails with
  ``error_kind == "unschedulable"``, every pending corner that is
  identical except for a clock at most as long and per-unit caps at
  most as large can be marked infeasible without running it.  Other
  deterministic failures (parse errors, emission or measurement
  trouble) are *not* evidence: they are not provably monotone in the
  constraint knobs.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.spark import (
    ERROR_KIND_UNSCHEDULABLE,
    SynthesisJob,
    SynthesisOutcome,
)


def dominates(a: SynthesisOutcome, b: SynthesisOutcome) -> bool:
    """True when *a* is at least as good as *b* on both latency and
    area and strictly better on at least one."""
    return (
        a.latency <= b.latency
        and a.area_total <= b.area_total
        and (a.latency < b.latency or a.area_total < b.area_total)
    )


class ParetoFront:
    """The latency/area frontier of the feasible outcomes seen so far."""

    def __init__(self) -> None:
        self._points: List[SynthesisOutcome] = []

    def update(self, outcome: SynthesisOutcome) -> bool:
        """Offer one outcome; True when it joins the frontier (evicting
        any points it now dominates), False when it is infeasible or
        strictly dominated by an existing frontier point."""
        if not outcome.ok:
            return False
        if any(dominates(point, outcome) for point in self._points):
            return False
        self._points = [
            point for point in self._points if not dominates(outcome, point)
        ]
        self._points.append(outcome)
        return True

    def points(self) -> List[SynthesisOutcome]:
        """Frontier outcomes, fastest first (deterministic ties)."""
        return sorted(
            self._points,
            key=lambda o: (o.latency, o.area_total, o.label),
        )

    def __len__(self) -> int:
        return len(self._points)

    def __bool__(self) -> bool:
        return bool(self._points)


@dataclass(frozen=True)
class SweepGoal:
    """The designer's early-exit constraints; ``None`` means unset."""

    target_latency: Optional[float] = None
    max_area: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.target_latency is not None or self.max_area is not None

    def satisfied_by(self, outcome: SynthesisOutcome) -> bool:
        """True when *outcome* is feasible and meets every set
        constraint (an inactive goal is never satisfied: an unbounded
        sweep has no stopping rule)."""
        if not self.active or not outcome.ok:
            return False
        if (
            self.target_latency is not None
            and outcome.latency > self.target_latency
        ):
            return False
        if self.max_area is not None and outcome.area_total > self.max_area:
            return False
        return True


def scalar_score(
    outcome: SynthesisOutcome,
    latency_weight: float = 1.0,
    area_weight: float = 0.0,
) -> float:
    """Collapse an outcome to the single float the search strategies
    minimize: a weighted latency/area sum for feasible outcomes,
    ``+inf`` for everything else.

    Infeasible, pruned and environment-failed corners all score the
    same ``+inf`` deliberately — a corner that one executor prunes by
    dominance and another executes to an unschedulable failure must
    look identical to a strategy, or seeded searches would diverge
    across executors.  The default weights realize the paper's
    designer loop (latency first); pass an ``area_weight`` to bias a
    search toward cheaper designs."""
    if not outcome.ok:
        return math.inf
    return (
        latency_weight * outcome.latency
        + area_weight * outcome.area_total
    )


# ---------------------------------------------------------------------------
# Dominance pruning of pending corners
# ---------------------------------------------------------------------------


def _dominance_signature(job: SynthesisJob) -> str:
    """Everything about a job *except* the two monotone constraint
    knobs (clock period, resource limits), canonically encoded and
    hashed.  Two jobs with equal signatures differ only in how
    constrained they are, which is what makes infeasibility transfer
    between them.  Hashing keeps witnesses small (no retained copy of
    the source text) and comparisons O(1)-sized."""
    data = job.fingerprint_data()
    script = dict(data["script"])
    script.pop("clock_period", None)
    script.pop("resource_limits", None)
    data["script"] = script
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _limits_at_most(
    tighter: Dict[str, int], looser: Dict[str, int]
) -> bool:
    """True when allocation *tighter* grants at most as many instances
    of every unit as *looser* does (an absent unit is unlimited)."""
    for unit, cap in looser.items():
        if unit not in tighter or tighter[unit] > cap:
            return False
    return True


@dataclass
class _Witness:
    signature: str
    clock: float
    limits: Dict[str, int]
    label: str


class InfeasiblePruner:
    """Accumulates deterministically infeasible corners and vetoes
    pending corners they provably doom."""

    def __init__(self) -> None:
        self._witnesses: List[_Witness] = []

    def __len__(self) -> int:
        return len(self._witnesses)

    def observe(self, job: SynthesisJob, outcome: SynthesisOutcome) -> None:
        """Record an executed (or recalled) outcome as pruning evidence.

        Only the scheduler's constraint failures count: environment
        errors say nothing about the design space, other deterministic
        failures are not monotone in the constraint knobs, and
        outcomes that were themselves pruned add no evidence beyond
        their witness (dominance is transitive), and a deduplicated
        replica repeats evidence its original already contributed."""
        if outcome.ok or outcome.error_kind != ERROR_KIND_UNSCHEDULABLE:
            return
        if outcome.provenance in ("pruned", "dedup"):
            return
        self._witnesses.append(
            _Witness(
                signature=_dominance_signature(job),
                clock=job.script.clock_period,
                limits=dict(job.script.resource_limits),
                label=job.label or "<unlabelled>",
            )
        )

    def veto(self, job: SynthesisJob) -> Optional[str]:
        """The label of a witness proving *job* infeasible, or None.

        A witness applies when the pending job is identical apart from
        the constraint knobs, its clock period is at most the
        witness's, and its resource allocation is at most as generous
        per unit — i.e. the pending job is at least as hard as a job
        that already failed deterministically."""
        signature = _dominance_signature(job)
        clock = job.script.clock_period
        limits = job.script.resource_limits
        for witness in self._witnesses:
            if (
                witness.signature == signature
                and clock <= witness.clock
                and _limits_at_most(limits, witness.limits)
            ):
                return witness.label
        return None
