"""The staged ILD transformation pipeline (paper Section 6, Figs 10-15).

Each stage applies one of the paper's coordinated transformations and
snapshots the design, so benchmarks and examples can print per-stage
metrics (operation count, basic-block count, conditional count) and the
tests can verify behavioral equivalence of every intermediate design
against the golden decoder:

=======  =========================================================
Fig 10   natural behavioral description (parse only)
Fig 11   speculation inside ``CalculateLength``: all data and
         control computations hoisted above the if-tree
Fig 12   ``CalculateLength`` inlined into the decode loop
Fig 13   the byte loop fully unrolled
Fig 14   the loop index constant-propagated away
Fig 15   second speculation round + cleanup, scheduled into ONE
         cycle with operation chaining
=======  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ild.behavioral import (
    build_ild_source,
    ild_externals,
    ild_interface,
    ild_library,
)
from repro.ir.builder import design_from_source
from repro.ir.htg import Design, IfNode, LoopNode
from repro.ir.printer import print_design
from repro.scheduler.list_scheduler import ChainingScheduler
from repro.scheduler.resources import ResourceAllocation
from repro.scheduler.schedule import StateMachine
from repro.transforms.chaining import WireVariableInserter
from repro.transforms.const_prop import ConstantPropagation
from repro.transforms.copy_prop import CopyPropagation
from repro.transforms.dce import DeadCodeElimination
from repro.transforms.inline import FunctionInliner
from repro.transforms.speculation import EarlyConditionExecution, Speculation
from repro.transforms.unroll import LoopUnroller


@dataclass
class PipelineStage:
    """Snapshot + metrics after one transformation stage."""

    name: str
    figure: str
    design: Design
    ops: int = 0
    blocks: int = 0
    conditionals: int = 0
    loops: int = 0

    @staticmethod
    def capture(name: str, figure: str, design: Design) -> "PipelineStage":
        main = design.main
        conditionals = 0
        loops = 0
        for func in design.functions.values():
            for node in func.walk_nodes():
                if isinstance(node, IfNode):
                    conditionals += 1
                elif isinstance(node, LoopNode):
                    loops += 1
        total_ops = sum(
            func.count_operations() for func in design.functions.values()
        )
        total_blocks = sum(
            func.count_basic_blocks() for func in design.functions.values()
        )
        return PipelineStage(
            name=name,
            figure=figure,
            design=design.clone(),
            ops=total_ops,
            blocks=total_blocks,
            conditionals=conditionals,
            loops=loops,
        )

    def code(self) -> str:
        return print_design(self.design)

    def __str__(self) -> str:
        return (
            f"{self.figure:>7} {self.name:<28} ops={self.ops:<4} "
            f"blocks={self.blocks:<3} ifs={self.conditionals:<3} "
            f"loops={self.loops}"
        )


class ILDPipeline:
    """Runs the paper's exact transformation sequence on the ILD.

    Note the paper's remark: "In practice, Spark performs inlining
    first, but speculation within the CalculateLength has been shown
    first to simplify explanation."  This reproduction follows the
    *presentation* order (speculation first) so each stage matches its
    figure; the tests also check that the practice order commutes.
    """

    def __init__(self, n: int = 8, clock_period: float = 1_000.0) -> None:
        self.n = n
        self.clock_period = clock_period
        self.externals = ild_externals(n)
        self.pure = set(self.externals)
        self.library = ild_library()
        self.interface = ild_interface(n)
        self.design = design_from_source(build_ild_source(n))
        self.stages: List[PipelineStage] = []
        self._capture("behavioral description", "Fig 10")

    # -- stages ------------------------------------------------------------

    def _capture(self, name: str, figure: str) -> PipelineStage:
        stage = PipelineStage.capture(name, figure, self.design)
        self.stages.append(stage)
        return stage

    def stage_fig11_speculation(self) -> PipelineStage:
        """Speculatively compute all data and control calculations in
        CalculateLength (paper Fig 11)."""
        EarlyConditionExecution().run_on_design(self.design)
        Speculation(pure_functions=self.pure).run_on_design(self.design)
        return self._capture("speculation in CalculateLength", "Fig 11")

    def stage_fig12_inline(self) -> PipelineStage:
        """Inline CalculateLength into the decode loop (paper Fig 12)."""
        FunctionInliner(["CalculateLength"]).run_on_design(self.design)
        return self._capture("CalculateLength inlined", "Fig 12")

    def stage_fig13_unroll(self) -> PipelineStage:
        """Fully unroll the byte loop (paper Fig 13)."""
        LoopUnroller({"i": 0}).run_on_design(self.design)
        return self._capture("loop fully unrolled", "Fig 13")

    def stage_fig14_constant_propagation(self) -> PipelineStage:
        """Propagate the loop index constant and eliminate ``i``
        (paper Fig 14).  Branch folding stays off so the per-byte
        conditional structure matches the figure (``NextStartByte``
        remains symbolic)."""
        ConstantPropagation(fold_branches=False).run_on_design(self.design)
        DeadCodeElimination(
            output_scalars=set(), pure_functions=self.pure
        ).run_on_design(self.design)
        return self._capture("loop index propagated away", "Fig 14")

    def stage_fig15_parallelize(self) -> PipelineStage:
        """Second speculation round: every per-byte DataCalculation and
        ControlLogic cone moves above the ripple conditionals, leaving
        the maximally parallel structure of Fig 15(a)."""
        Speculation(pure_functions=self.pure).run_on_design(self.design)
        CopyPropagation().run_on_design(self.design)
        DeadCodeElimination(
            output_scalars=set(), pure_functions=self.pure
        ).run_on_design(self.design)
        return self._capture("maximally parallel form", "Fig 15a")

    def insert_wires(self) -> PipelineStage:
        """Chaining support: wire-variables threaded through every
        same-cycle def-use (paper Section 3.1.2) ahead of the
        single-cycle schedule."""
        WireVariableInserter().run_on_function(self.design.main, self.design)
        return self._capture("wire-variables inserted", "3.1.2")

    def schedule_single_cycle(self) -> StateMachine:
        """Schedule into one state with unlimited resources (paper
        Section 6: "the Spark synthesis tool is given an unlimited
        resource allocation and full freedom to unroll loops")."""
        scheduler = ChainingScheduler(
            library=self.library,
            clock_period=self.clock_period,
            allocation=ResourceAllocation.unlimited(),
        )
        return scheduler.schedule(self.design.main)

    def run_all(self) -> StateMachine:
        """Execute every stage in order and return the final schedule."""
        self.stage_fig11_speculation()
        self.stage_fig12_inline()
        self.stage_fig13_unroll()
        self.stage_fig14_constant_propagation()
        self.stage_fig15_parallelize()
        self.insert_wires()
        return self.schedule_single_cycle()

    # -- reporting -----------------------------------------------------------

    def stage_table(self) -> str:
        header = (
            f"{'figure':>7} {'stage':<28} {'ops':<8} {'blocks':<7} "
            f"{'ifs':<7} loops"
        )
        return "\n".join([header] + [str(stage) for stage in self.stages])

    def stage_metrics(self) -> Dict[str, Dict[str, int]]:
        return {
            stage.figure: {
                "ops": stage.ops,
                "blocks": stage.blocks,
                "conditionals": stage.conditionals,
                "loops": stage.loops,
            }
            for stage in self.stages
        }
