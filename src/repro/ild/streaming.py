"""Streaming (multi-chunk) instruction length decoding.

The paper simplifies its ILD model and says what the real block must
do (Section 5): "Since the ILD is decoding a stream of instructions
arriving from memory, the behavioral description should have an
infinite outer loop, that synthesis should break into chunks of n
iterations each.  Also, consider that an instruction starts at the
(n-1)th byte.  Then the length calculation may need to check bytes
from the next set of bytes that fill the buffer.  So, the intermediate
length calculation information must be saved across buffer decodes and
passed to the next cycle."

This module implements that un-simplified model:

* :class:`CarryState` — the cross-chunk register state: how many bytes
  of the current chunk are consumed by an instruction that started in
  an earlier chunk, plus the partially-accumulated length walk
  (contributions so far and which Need/Contribution pair comes next)
  when the length-determining bytes themselves span the boundary.
* :class:`StreamingILD` — decodes one chunk per "cycle", taking and
  returning a :class:`CarryState`; functionally equivalent to decoding
  the whole stream at once (the flat :class:`~repro.ild.model.GoldenILD`),
  which the tests verify on random streams and chunk sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.ild.isa import (
    BYTES_EXAMINED,
    DEFAULT_ISA,
    STREAMING_ISA,
    SyntheticISA,
)


@dataclass(frozen=True)
class CarryState:
    """Registers carried between consecutive chunk decodes.

    Attributes
    ----------
    skip:
        bytes at the head of the next chunk that belong to an
        instruction whose length is already fully decided.
    walk_contributions:
        length contributions accumulated so far for an instruction
        whose length walk is still in progress at the boundary
        (empty tuple when no walk is pending).
    walk_next_k:
        which byte of the pending instruction comes next (2..4); only
        meaningful when a walk is pending.
    walk_start_global:
        the pending instruction's global start position (for traces).
    position:
        global position of the first byte of the *next* chunk
        (1-based over the whole stream).
    """

    skip: int = 0
    walk_contributions: Tuple[int, ...] = ()
    walk_next_k: int = 0
    walk_start_global: int = 0
    position: int = 1

    @property
    def walk_pending(self) -> bool:
        return self.walk_next_k != 0

    def is_idle(self) -> bool:
        """True when the next chunk starts exactly on an instruction
        boundary with no pending walk."""
        return self.skip == 0 and not self.walk_pending


@dataclass
class ChunkResult:
    """Per-chunk decode output (the Fig 15(b) outputs plus carry-out)."""

    mark: List[int]
    lengths: List[int]
    carry_out: CarryState
    starts_global: List[int] = field(default_factory=list)


class StreamingILD:
    """Chunked decoder with carry — the paper's full streaming model.

    One :meth:`decode_chunk` call models one hardware cycle of the
    Fig 15(b) architecture extended with carry registers; iterating it
    over an arbitrarily long stream reproduces the flat decode.
    """

    def __init__(
        self,
        n: int,
        isa: Optional[SyntheticISA] = None,
        strict: bool = True,
    ) -> None:
        if n < 1:
            raise ValueError("chunk size must be >= 1")
        self.n = n
        self.isa = isa if isa is not None else STREAMING_ISA
        if strict and not self.isa.is_streaming_safe():
            raise ValueError(
                "ISA violates the streaming progress property "
                "(length can be shorter than the bytes examined to "
                "decide it, so an instruction start could fall behind "
                "an already-emitted chunk); use StreamingSafeISA, or "
                "strict=False to experiment"
            )

    # -- the per-cycle step -------------------------------------------------

    def decode_chunk(
        self, chunk: Sequence[int], carry: Optional[CarryState] = None
    ) -> ChunkResult:
        """Decode one n-byte chunk (0-based sequence of byte values).

        The chunk must hold exactly ``n`` bytes; the final, shorter
        chunk of a stream can be padded with zeros (zero bytes decode
        as 1-byte instructions, matching the paper's zero-contribution
        padding rule).
        """
        if len(chunk) != self.n:
            raise ValueError(
                f"chunk holds {len(chunk)} bytes, decoder expects {self.n}"
            )
        carry = carry or CarryState()
        mark = [0] * (self.n + 1)
        lengths = [0] * (self.n + 1)
        starts: List[int] = []

        local = 1  # 1-based position within this chunk
        skip = carry.skip
        walk_contributions = list(carry.walk_contributions)
        walk_next_k = carry.walk_next_k
        walk_start = carry.walk_start_global

        # Resume a length walk that straddled the boundary.
        if walk_next_k:
            consumed, walk_contributions, walk_next_k = self._resume_walk(
                chunk, walk_contributions, walk_next_k
            )
            if walk_next_k == 0:
                # Walk complete: total length known; the instruction
                # started `already` bytes before this chunk.
                length = sum(walk_contributions)
                already = carry.position - walk_start
                skip = max(length - already, 0)
                walk_contributions = []
            else:
                # Still undecided after this whole chunk (only possible
                # for tiny n); everything here belongs to the pending
                # instruction's length bytes.
                return ChunkResult(
                    mark=mark,
                    lengths=lengths,
                    carry_out=CarryState(
                        skip=0,
                        walk_contributions=tuple(walk_contributions),
                        walk_next_k=walk_next_k,
                        walk_start_global=walk_start,
                        position=carry.position + self.n,
                    ),
                    starts_global=starts,
                )

        # Skip the tail of a fully-decided instruction.
        consumed_by_skip = min(skip, self.n)
        local += consumed_by_skip
        skip -= consumed_by_skip

        # Normal decode walk inside the chunk.
        while local <= self.n and skip == 0:
            mark[local] = 1
            starts.append(carry.position + local - 1)
            (
                length,
                contributions,
                next_k,
            ) = self._walk_from(chunk, local)
            if next_k:
                # The length-determining bytes run off the chunk edge —
                # the Section 5 case.  Save the intermediate walk.
                return ChunkResult(
                    mark=mark,
                    lengths=lengths,
                    carry_out=CarryState(
                        skip=0,
                        walk_contributions=tuple(contributions),
                        walk_next_k=next_k,
                        walk_start_global=carry.position + local - 1,
                        position=carry.position + self.n,
                    ),
                    starts_global=starts,
                )
            lengths[local] = length
            local += length

        # local > n: the final instruction may spill into the next
        # chunk; any skip not consumed by this chunk also carries over.
        spill = max(local - self.n - 1, 0) + skip
        return ChunkResult(
            mark=mark,
            lengths=lengths,
            carry_out=CarryState(
                skip=spill, position=carry.position + self.n
            ),
            starts_global=starts,
        )

    # -- walk helpers ---------------------------------------------------------

    def _walk_from(
        self, chunk: Sequence[int], local: int
    ) -> Tuple[int, List[int], int]:
        """The Fig 8 walk starting at 1-based *local*.  Returns
        (length, contributions, next_k) where next_k != 0 means the
        walk ran off the chunk (length not yet decided)."""
        isa = self.isa
        byte = chunk[local - 1]
        contributions = [isa.length_contribution_1(byte)]
        if not isa.need_2nd_byte(byte):
            return contributions[0], contributions, 0
        return self._continue_walk(chunk, local + 1, contributions, 2)

    def _resume_walk(
        self,
        chunk: Sequence[int],
        contributions: List[int],
        next_k: int,
    ) -> Tuple[int, List[int], int]:
        """Continue a pending walk at the head of a new chunk.  Returns
        (bytes consumed is implicit), updated contributions, next_k
        (0 when decided)."""
        _, contributions, next_k = self._continue_walk(
            chunk, 1, contributions, next_k
        )
        return 0, contributions, next_k

    def _continue_walk(
        self,
        chunk: Sequence[int],
        local: int,
        contributions: List[int],
        k: int,
    ) -> Tuple[int, List[int], int]:
        """Walk contribution/need pairs k..4 starting at *local*.
        Returns (length-so-far, contributions, next_k)."""
        isa = self.isa
        lc = [
            None,
            isa.length_contribution_1,
            isa.length_contribution_2,
            isa.length_contribution_3,
            isa.length_contribution_4,
        ]
        need = [None, None, isa.need_3rd_byte, isa.need_4th_byte]
        while k <= BYTES_EXAMINED:
            if local > self.n:
                return sum(contributions), contributions, k
            byte = chunk[local - 1]
            contributions.append(lc[k](byte))
            if k == BYTES_EXAMINED or not need[k](byte):
                return sum(contributions), contributions, 0
            k += 1
            local += 1
        return sum(contributions), contributions, 0

    # -- whole-stream convenience ----------------------------------------------

    def decode_stream(
        self, stream: Sequence[int]
    ) -> Tuple[List[int], CarryState, List[ChunkResult]]:
        """Decode an arbitrary-length 0-based byte stream chunk by
        chunk (zero-padding the tail) and return the concatenated
        global mark vector (1-based, index 0 unused), the final carry
        and the per-chunk results."""
        n = self.n
        padded = list(stream)
        if len(padded) % n:
            padded.extend(0 for _ in range(n - len(padded) % n))
        carry = CarryState()
        chunks: List[ChunkResult] = []
        global_mark = [0] * (len(padded) + 1)
        for base in range(0, len(padded), n):
            result = self.decode_chunk(padded[base : base + n], carry)
            chunks.append(result)
            for local in range(1, n + 1):
                if result.mark[local]:
                    global_mark[base + local] = 1
            carry = result.carry_out
        return global_mark[: len(stream) + 1], carry, chunks


def flat_reference_marks(
    stream: Sequence[int], isa: Optional[SyntheticISA] = None
) -> List[int]:
    """Marks from decoding the whole 0-based stream at once — the
    oracle the chunked decoder must match.  Instructions that begin
    inside the stream have their length walk read zero-padding past
    the end, matching :meth:`StreamingILD.decode_stream`."""
    isa = isa or DEFAULT_ISA
    mark = [0] * (len(stream) + 1)
    position = 1
    while position <= len(stream):
        mark[position] = 1
        window = list(stream[position - 1 : position - 1 + BYTES_EXAMINED])
        window.extend(0 for _ in range(BYTES_EXAMINED - len(window)))
        position += isa.instruction_length(window)
    return mark
