"""Behavioral C descriptions of the ILD and their synthesis bindings.

:func:`build_ild_source` regenerates the paper's Fig 10 code for a
given buffer size n; :func:`build_natural_ild_source` regenerates the
Fig 16 while(1) form.  :func:`ild_externals` binds the
``LengthContribution_k`` / ``Need_kth_Byte`` externals to the synthetic
ISA reading the shared ``Buffer`` array (with the zero-contribution
padding rule), for both the behavioral interpreter and the RTL
simulator.  :func:`ild_library` registers those externals' delay/area
as combinational decode blocks; :func:`ild_interface` declares the
hardware ports (buffer in, Mark/len out — the Fig 1(b)/Fig 15(b)
buffer-to-buffer shape).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.backend.interface import DesignInterface
from repro.ild.isa import DEFAULT_ISA, SyntheticISA
from repro.interp.evaluator import stateful_external
from repro.scheduler.resources import ResourceLibrary

BUFFER_ARRAY = "Buffer"


def build_ild_source(n: int) -> str:
    """The Fig 10 behavioral description, parameterized by buffer size.

    The paper's ``ResetArray(Mark)`` is omitted: arrays reset to zero
    at initialization in this flow (the hardware equivalent is the
    output register reset).
    """
    return f"""
// Instruction Length Decoder -- behavioral description (paper Fig 10)
int CalculateLength(i) {{
  int lc1; int lc2; int lc3; int lc4;
  int Length;
  lc1 = LengthContribution_1(i);
  if (Need_2nd_Byte(i)) {{
    lc2 = LengthContribution_2(i + 1);
    if (Need_3rd_Byte(i + 1)) {{
      lc3 = LengthContribution_3(i + 2);
      if (Need_4th_Byte(i + 2)) {{
        lc4 = LengthContribution_4(i + 3);
        Length = lc1 + lc2 + lc3 + lc4;
      }} else Length = lc1 + lc2 + lc3;
    }} else Length = lc1 + lc2;
  }} else Length = lc1;
  return Length;
}}

int Buffer[{n + 1}];
int Mark[{n + 1}];
int len[{n + 1}];
int NextStartByte;
int i;
NextStartByte = 1;
for (i = 1; i <= {n}; i++) {{
  if (i == NextStartByte) {{
    Mark[i] = 1;
    len[i] = CalculateLength(i);
    NextStartByte += len[i];
  }}
}}
"""


def build_natural_ild_source(n: int) -> str:
    """The Fig 16 'succinct and natural' description.

    The paper's version is an infinite ``while(1)``; a buffer-bound
    guard is the minimal change that makes it executable on one buffer
    chunk (the paper: synthesis "should break [the stream] into chunks
    of n iterations each").  The while-to-for source transformation
    (:class:`repro.transforms.loop_rewrite.WhileToForRewrite`) turns
    this into the Fig 10 form.
    """
    return f"""
// Instruction Length Decoder -- natural description (paper Fig 16)
int CalculateLength(i) {{
  int lc1; int lc2; int lc3; int lc4;
  int Length;
  lc1 = LengthContribution_1(i);
  if (Need_2nd_Byte(i)) {{
    lc2 = LengthContribution_2(i + 1);
    if (Need_3rd_Byte(i + 1)) {{
      lc3 = LengthContribution_3(i + 2);
      if (Need_4th_Byte(i + 2)) {{
        lc4 = LengthContribution_4(i + 3);
        Length = lc1 + lc2 + lc3 + lc4;
      }} else Length = lc1 + lc2 + lc3;
    }} else Length = lc1 + lc2;
  }} else Length = lc1;
  return Length;
}}

int Buffer[{n + 1}];
int Mark[{n + 1}];
int len_v;
int NextStartByte;
NextStartByte = 1;
while (1) {{
  if (NextStartByte > {n}) {{
    break;
  }}
  Mark[NextStartByte] = 1;
  len_v = CalculateLength(NextStartByte);
  NextStartByte += len_v;
}}
"""


def ild_externals(
    n: int, isa: Optional[SyntheticISA] = None
) -> Dict[str, Callable[..., int]]:
    """External function bindings reading the shared ``Buffer`` array.

    Positions are 1-based; positions beyond n contribute zero and never
    request further bytes (paper footnote 2).
    """
    isa = isa or DEFAULT_ISA

    def byte_at(state, position: int) -> int:
        buffer = state.arrays.get(BUFFER_ARRAY, [])
        if 1 <= position <= n and position < len(buffer):
            return buffer[position]
        return 0

    @stateful_external
    def lc1(i: int, state=None) -> int:
        return isa.length_contribution_1(byte_at(state, i)) if i <= n else 0

    @stateful_external
    def lc2(i: int, state=None) -> int:
        return isa.length_contribution_2(byte_at(state, i)) if i <= n else 0

    @stateful_external
    def lc3(i: int, state=None) -> int:
        return isa.length_contribution_3(byte_at(state, i)) if i <= n else 0

    @stateful_external
    def lc4(i: int, state=None) -> int:
        return isa.length_contribution_4(byte_at(state, i)) if i <= n else 0

    @stateful_external
    def need2(i: int, state=None) -> int:
        return isa.need_2nd_byte(byte_at(state, i)) if i <= n else 0

    @stateful_external
    def need3(i: int, state=None) -> int:
        return isa.need_3rd_byte(byte_at(state, i)) if i <= n else 0

    @stateful_external
    def need4(i: int, state=None) -> int:
        return isa.need_4th_byte(byte_at(state, i)) if i <= n else 0

    return {
        "LengthContribution_1": lc1,
        "LengthContribution_2": lc2,
        "LengthContribution_3": lc3,
        "LengthContribution_4": lc4,
        "Need_2nd_Byte": need2,
        "Need_3rd_Byte": need3,
        "Need_4th_Byte": need4,
    }


# Delay/area of the decode blocks, in the library's normalized units.
# A LengthContribution block is a small PLA over one byte; a Need block
# is a single bit test.  Relative magnitudes are what matters.
EXTERNAL_TIMING = {
    "LengthContribution_1": (0.9, 48.0),
    "LengthContribution_2": (0.9, 48.0),
    "LengthContribution_3": (0.9, 48.0),
    "LengthContribution_4": (0.9, 48.0),
    "Need_2nd_Byte": (0.3, 8.0),
    "Need_3rd_Byte": (0.3, 8.0),
    "Need_4th_Byte": (0.3, 8.0),
}


def ild_library() -> ResourceLibrary:
    """Resource library with the ILD decode blocks registered."""
    library = ResourceLibrary()
    for name, (delay, area) in EXTERNAL_TIMING.items():
        library.register_external(name, delay=delay, area=area)
    return library


def ild_interface(n: int) -> DesignInterface:
    """Hardware ports: instruction buffer in, Mark / len vectors out."""
    return DesignInterface(
        name="ild",
        scalar_inputs=[],
        scalar_outputs=[],
        input_arrays={BUFFER_ARRAY: n + 1},
        output_arrays={"Mark": n + 1, "len": n + 1},
    )


def ild_environment(n: int) -> "JobEnvironment":
    """Job-environment factory for the design-space exploration
    engine: resolves the ILD's library, interface and externals inside
    a worker process (``environment="repro.ild:ild_environment"``)."""
    from repro.spark import JobEnvironment

    return JobEnvironment(
        library=ild_library(),
        interface=ild_interface(n),
        externals=ild_externals(n),
    )
