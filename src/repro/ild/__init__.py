"""The Instruction Length Decoder case study (paper Sections 5-6).

The ILD determines the starting byte and length of each variable-length
instruction in an instruction buffer.  The paper's model: lengths range
1..11 bytes and up to 4 bytes of an instruction determine its length
(Fig 8); the behavioral description is Fig 10; the Spark transformation
pipeline (Figs 11-15) turns it into a maximally parallel single-cycle
architecture of three stages — DataCalculation, ControlLogic, ripple
control logic (Fig 15b).

The Pentium length-decode tables are proprietary, so :mod:`repro.ild.isa`
defines a synthetic ISA with the same structure (documented in
DESIGN.md): deterministic ``LengthContribution_k`` / ``Need_kth_Byte``
functions of the byte values, contributions 1..4/0..3/0..3/0..1 for a
maximum instruction length of 11 bytes and a guaranteed minimum of 1
(decoding always progresses).
"""

from repro.ild.isa import (
    MAX_INSTRUCTION_LENGTH,
    STREAMING_ISA,
    StreamingSafeISA,
    SyntheticISA,
    random_buffer,
)
from repro.ild.streaming import (
    CarryState,
    ChunkResult,
    StreamingILD,
    flat_reference_marks,
)
from repro.ild.model import GoldenILD, decode_buffer
from repro.ild.behavioral import (
    build_ild_source,
    build_natural_ild_source,
    ild_environment,
    ild_externals,
    ild_interface,
    ild_library,
)
from repro.ild.pipeline import ILDPipeline, PipelineStage
from repro.ild.architecture import ILDArchitecture, architecture_for

__all__ = [
    "CarryState",
    "ChunkResult",
    "GoldenILD",
    "ILDArchitecture",
    "ILDPipeline",
    "MAX_INSTRUCTION_LENGTH",
    "PipelineStage",
    "STREAMING_ISA",
    "StreamingILD",
    "StreamingSafeISA",
    "SyntheticISA",
    "flat_reference_marks",
    "architecture_for",
    "build_ild_source",
    "build_natural_ild_source",
    "decode_buffer",
    "ild_environment",
    "ild_externals",
    "ild_interface",
    "ild_library",
    "random_buffer",
]
