"""Structural model of the final ILD architecture (paper Fig 15b).

"This leads to a design, where all the data for all the bytes is
calculated concurrently, followed by a control logic unit, which
determines the length of the instructions if they were to start at
each byte and finally, a ripple control logic unit that determines the
actual instruction start bytes."

:class:`ILDArchitecture` is the analytic component model of those
three stages for a buffer of n bytes; it predicts area and critical
path from the resource library, simulates the structure directly, and
lets benchmarks compare the analytic model against what the synthesis
flow actually produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ild.behavioral import EXTERNAL_TIMING, ild_library
from repro.ild.isa import DEFAULT_ISA, SyntheticISA
from repro.scheduler.resources import ResourceLibrary


@dataclass
class StageInventory:
    """Component counts of one architecture stage."""

    name: str
    components: Dict[str, int] = field(default_factory=dict)

    def area(self, library: ResourceLibrary) -> float:
        total = 0.0
        for component, count in self.components.items():
            if component in EXTERNAL_TIMING:
                total += library.external(component).area * count
            elif component in library.units:
                total += library.units[component].area * count
            else:
                raise KeyError(f"unknown component {component!r}")
        return total


@dataclass
class ILDArchitecture:
    """The Fig 15(b) three-stage architecture for buffer size n.

    Per byte position i (1..n):

    * **DataCalculation**: 4 LengthContribution blocks, 3 Need blocks
      (all reading the buffer bus), 3 adders computing the candidate
      lengths (lc1+lc2, +lc3, +lc4 — the TempLength tree of Fig 11).
    * **ControlLogic**: the 3-level mux tree steered by the need bits,
      producing len[i].
    * **Ripple control**: the serial instruction-marking chain —
      a comparator (i == NextStartByte), a mux and an adder updating
      NextStartByte.  This is the only serial part of the design: its
      depth grows with n, the data stages' depth does not.
    """

    n: int
    isa: SyntheticISA = field(default_factory=lambda: DEFAULT_ISA)
    library: ResourceLibrary = field(default_factory=ild_library)

    # -- structure ----------------------------------------------------------

    def data_calculation_stage(self) -> StageInventory:
        return StageInventory(
            name="DataCalculation",
            components={
                "LengthContribution_1": self.n,
                "LengthContribution_2": self.n,
                "LengthContribution_3": self.n,
                "LengthContribution_4": self.n,
                "Need_2nd_Byte": self.n,
                "Need_3rd_Byte": self.n,
                "Need_4th_Byte": self.n,
                "alu": 3 * self.n,
            },
        )

    def control_logic_stage(self) -> StageInventory:
        return StageInventory(
            name="ControlLogic",
            components={"mux": 3 * self.n},
        )

    def ripple_stage(self) -> StageInventory:
        return StageInventory(
            name="RippleControl",
            components={"cmp": self.n, "alu": self.n, "mux": 2 * self.n},
        )

    def stages(self) -> List[StageInventory]:
        return [
            self.data_calculation_stage(),
            self.control_logic_stage(),
            self.ripple_stage(),
        ]

    # -- estimates -----------------------------------------------------------

    def area(self) -> float:
        """Total datapath area (normalized gate equivalents); linear in
        n — the paper's trade of area for single-cycle latency."""
        return sum(stage.area(self.library) for stage in self.stages())

    def area_breakdown(self) -> Dict[str, float]:
        return {stage.name: stage.area(self.library) for stage in self.stages()}

    def critical_path(self) -> float:
        """Single-cycle critical path: parallel DataCalculation depth +
        ControlLogic mux tree + n ripple steps."""
        lc = max(delay for delay, _ in EXTERNAL_TIMING.values())
        need = min(delay for delay, _ in EXTERNAL_TIMING.values())
        alu = self.library.units["alu"].delay
        mux = self.library.mux.delay
        cmp_delay = self.library.units["cmp"].delay
        data_depth = lc + 3 * alu  # contributions then the 3-adder sum tree
        control_depth = 3 * mux  # the need-steered mux tree
        ripple_step = cmp_delay + mux + alu
        return data_depth + control_depth + self.n * ripple_step

    # -- direct structural simulation -----------------------------------------

    def simulate(
        self, buffer: Sequence[int]
    ) -> Tuple[List[int], List[int], List[int]]:
        """Execute the three stages exactly as drawn in Fig 15.

        Returns (mark, candidate_lengths, data_stage_need_bits).  The
        candidate lengths are computed for *every* byte position — the
        speculative "assume an instruction starts at each byte" of
        Fig 15(a) — and the ripple stage then selects the real starts.
        """
        n = self.n

        def byte_at(position: int) -> int:
            if 1 <= position <= n and position < len(buffer):
                return buffer[position]
            return 0

        # Stage 1: DataCalculation, all byte positions in parallel.
        lc = [[0] * (n + 1) for _ in range(5)]
        need = [[0] * (n + 1) for _ in range(5)]
        for i in range(1, n + 1):
            lc[1][i] = self.isa.length_contribution_1(byte_at(i)) if i <= n else 0
            lc[2][i] = (
                self.isa.length_contribution_2(byte_at(i + 1))
                if i + 1 <= n
                else 0
            )
            lc[3][i] = (
                self.isa.length_contribution_3(byte_at(i + 2))
                if i + 2 <= n
                else 0
            )
            lc[4][i] = (
                self.isa.length_contribution_4(byte_at(i + 3))
                if i + 3 <= n
                else 0
            )
            need[2][i] = self.isa.need_2nd_byte(byte_at(i)) if i <= n else 0
            need[3][i] = (
                self.isa.need_3rd_byte(byte_at(i + 1)) if i + 1 <= n else 0
            )
            need[4][i] = (
                self.isa.need_4th_byte(byte_at(i + 2)) if i + 2 <= n else 0
            )

        # Stage 2: ControlLogic — candidate length per byte position
        # (the TempLength mux tree of Fig 11).
        lengths = [0] * (n + 1)
        for i in range(1, n + 1):
            temp1 = lc[1][i] + lc[2][i] + lc[3][i] + lc[4][i]
            temp2 = lc[1][i] + lc[2][i] + lc[3][i]
            temp3 = lc[1][i] + lc[2][i]
            if need[2][i]:
                if need[3][i]:
                    lengths[i] = temp1 if need[4][i] else temp2
                else:
                    lengths[i] = temp3
            else:
                lengths[i] = lc[1][i]

        # Stage 3: ripple control logic — serial marking chain.
        mark = [0] * (n + 1)
        next_start = 1
        for i in range(1, n + 1):
            if i == next_start:
                mark[i] = 1
                next_start = next_start + lengths[i]
        need_bits = [need[2][i] for i in range(n + 1)]
        return mark, lengths, need_bits


def architecture_for(
    n: int,
    isa: Optional[SyntheticISA] = None,
    library: Optional[ResourceLibrary] = None,
) -> ILDArchitecture:
    """Build the Fig 15(b) architecture model for buffer size n."""
    return ILDArchitecture(
        n=n,
        isa=isa or DEFAULT_ISA,
        library=library or ild_library(),
    )
