"""Golden Python model of the instruction length decoder.

Implements the paper's Figs 8-9 walk directly: decode the instruction
at the current start byte by examining up to four bytes, mark the
start, advance by the decoded length, repeat until the buffer is
exhausted.  The behavioral C description, the transformed designs, the
scheduled RTL and the structural architecture model are all validated
against this reference (and the reference itself against an
independent recursive implementation in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.ild.isa import BYTES_EXAMINED, DEFAULT_ISA, SyntheticISA


@dataclass
class DecodeTrace:
    """One instruction decode step (the Figs 8/9 walk record)."""

    start: int
    length: int
    bytes_examined: int
    contributions: Tuple[int, ...]


@dataclass
class GoldenILD:
    """Reference decoder over a 1-based instruction buffer.

    ``buffer[0]`` is unused padding so that positions match the
    paper's 1-based indexing; bytes beyond ``n`` contribute zero
    (paper footnote 2).
    """

    n: int
    isa: SyntheticISA = field(default_factory=lambda: DEFAULT_ISA)

    # -- byte accessors honouring the padding rule -------------------------

    def byte_at(self, buffer: Sequence[int], position: int) -> int:
        """Byte at 1-based *position*; zero beyond the buffer."""
        if 1 <= position <= self.n and position < len(buffer):
            return buffer[position]
        return 0

    def length_contribution(
        self, buffer: Sequence[int], k: int, position: int
    ) -> int:
        """``LengthContribution_k`` at 1-based *position* with the
        zero-contribution rule for positions beyond the buffer."""
        if position > self.n:
            return 0
        byte = self.byte_at(buffer, position)
        return [
            self.isa.length_contribution_1,
            self.isa.length_contribution_2,
            self.isa.length_contribution_3,
            self.isa.length_contribution_4,
        ][k - 1](byte)

    def need_byte(self, buffer: Sequence[int], k: int, position: int) -> int:
        """``Need_kth_Byte`` predicate (k in 2..4) evaluated at
        *position* (the byte before the one being decided)."""
        if position > self.n:
            return 0
        byte = self.byte_at(buffer, position)
        return [
            self.isa.need_2nd_byte,
            self.isa.need_3rd_byte,
            self.isa.need_4th_byte,
        ][k - 2](byte)

    # -- single-instruction decode (Fig 8) ---------------------------------

    def calculate_length(
        self, buffer: Sequence[int], start: int
    ) -> DecodeTrace:
        """Decode the instruction starting at 1-based *start*: the
        CalculateLength walk of Fig 10."""
        lc1 = self.length_contribution(buffer, 1, start)
        # Clamp so a start at the buffer edge still advances.
        lc1 = max(lc1, 1)
        contributions = [lc1]
        examined = 1
        length = lc1
        if self.need_byte(buffer, 2, start):
            lc2 = self.length_contribution(buffer, 2, start + 1)
            contributions.append(lc2)
            examined = 2
            length += lc2
            if self.need_byte(buffer, 3, start + 1):
                lc3 = self.length_contribution(buffer, 3, start + 2)
                contributions.append(lc3)
                examined = 3
                length += lc3
                if self.need_byte(buffer, 4, start + 2):
                    lc4 = self.length_contribution(buffer, 4, start + 3)
                    contributions.append(lc4)
                    examined = 4
                    length += lc4
        return DecodeTrace(
            start=start,
            length=length,
            bytes_examined=examined,
            contributions=tuple(contributions),
        )

    # -- whole-buffer decode (Figs 8+9 repeated) -----------------------------

    def decode(
        self, buffer: Sequence[int]
    ) -> Tuple[List[int], List[int], List[DecodeTrace]]:
        """Decode the whole buffer.

        Returns ``(mark, lengths, traces)`` where ``mark[i]`` is 1 iff
        an instruction starts at byte i (1-based, index 0 unused) and
        ``lengths[i]`` is that instruction's decoded length (0 at
        non-start bytes).
        """
        mark = [0] * (self.n + 1)
        lengths = [0] * (self.n + 1)
        traces: List[DecodeTrace] = []
        next_start = 1
        while next_start <= self.n:
            trace = self.calculate_length(buffer, next_start)
            mark[next_start] = 1
            lengths[next_start] = trace.length
            traces.append(trace)
            next_start += trace.length
        return mark, lengths, traces


def decode_buffer(
    buffer: Sequence[int], n: Optional[int] = None, isa: Optional[SyntheticISA] = None
) -> List[int]:
    """Convenience: the Mark bit vector for a 1-based buffer."""
    size = n if n is not None else len(buffer) - 1
    model = GoldenILD(n=size, isa=isa or DEFAULT_ISA)
    mark, _, _ = model.decode(buffer)
    return mark


def decode_recursive(
    buffer: Sequence[int], n: int, isa: Optional[SyntheticISA] = None
) -> List[int]:
    """An independent recursive implementation used to cross-check the
    golden model (different code path, same specification)."""
    model = GoldenILD(n=n, isa=isa or DEFAULT_ISA)

    def window_length(start: int) -> int:
        window = [model.byte_at(buffer, start + k) for k in range(BYTES_EXAMINED)]
        # Apply the zero-contribution rule byte by byte.
        isa_ = model.isa
        length = isa_.length_contribution_1(window[0]) if start <= n else 0
        length = max(length, 1)
        if start <= n and isa_.need_2nd_byte(window[0]):
            if start + 1 <= n:
                length += isa_.length_contribution_2(window[1])
            if start + 1 <= n and isa_.need_3rd_byte(window[1]):
                if start + 2 <= n:
                    length += isa_.length_contribution_3(window[2])
                if start + 2 <= n and isa_.need_4th_byte(window[2]):
                    if start + 3 <= n:
                        length += isa_.length_contribution_4(window[3])
        return length

    mark = [0] * (n + 1)

    def walk(start: int) -> None:
        if start > n:
            return
        mark[start] = 1
        walk(start + window_length(start))

    walk(1)
    return mark
