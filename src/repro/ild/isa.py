"""Synthetic variable-length ISA for the ILD case study.

Substitution for the proprietary Pentium tables (see DESIGN.md): the
length-determining structure matches the paper's model exactly —

* instructions are 1..11 bytes long (paper Section 5);
* up to 4 bytes must be examined (Fig 8): byte k contributes
  ``LengthContribution_k`` and predicate ``Need_(k+1)th_Byte`` decides
  whether the next byte participates;
* bytes beyond the buffer contribute zero (paper footnote 2).

The concrete encodings are bit-field functions of the byte value:

====================  ========================  =======
quantity              definition                range
====================  ========================  =======
LengthContribution_1  1 + (byte & 3)            1..4
Need_2nd_Byte         byte bit 7                0/1
LengthContribution_2  (byte >> 2) & 3           0..3
Need_3rd_Byte         byte bit 6                0/1
LengthContribution_3  (byte >> 3) & 3           0..3
Need_4th_Byte         byte bit 5                0/1
LengthContribution_4  (byte >> 6) & 1           0..1
====================  ========================  =======

Maximum length = 4+3+3+1 = 11, minimum = 1, so the decoder always
advances — the property the paper's while(1) form (Fig 16) relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

MAX_INSTRUCTION_LENGTH = 11
MIN_INSTRUCTION_LENGTH = 1
BYTES_EXAMINED = 4


@dataclass(frozen=True)
class SyntheticISA:
    """The byte-level length-decode functions.

    All methods take raw byte values (0..255).  Index-based variants
    that read a buffer and honour the zero-contribution padding rule
    live on :class:`repro.ild.model.GoldenILD`.
    """

    def length_contribution_1(self, byte: int) -> int:
        return 1 + (byte & 0x3)

    def need_2nd_byte(self, byte: int) -> int:
        return (byte >> 7) & 0x1

    def length_contribution_2(self, byte: int) -> int:
        return (byte >> 2) & 0x3

    def need_3rd_byte(self, byte: int) -> int:
        return (byte >> 6) & 0x1

    def length_contribution_3(self, byte: int) -> int:
        return (byte >> 3) & 0x3

    def need_4th_byte(self, byte: int) -> int:
        return (byte >> 5) & 0x1

    def length_contribution_4(self, byte: int) -> int:
        return (byte >> 6) & 0x1

    # -- whole-instruction helpers ----------------------------------------

    def instruction_length(self, window: Sequence[int]) -> int:
        """Length of the instruction whose first byte starts *window*
        (the Fig 8 walk over up to 4 bytes).  Missing window bytes are
        treated as zero-contribution padding."""
        b = list(window) + [0] * (BYTES_EXAMINED - len(window))
        length = self.length_contribution_1(b[0])
        if not self.need_2nd_byte(b[0]):
            return length
        length += self.length_contribution_2(b[1])
        if not self.need_3rd_byte(b[1]):
            return length
        length += self.length_contribution_3(b[2])
        if not self.need_4th_byte(b[2]):
            return length
        length += self.length_contribution_4(b[3])
        return length

    def max_length(self) -> int:
        return MAX_INSTRUCTION_LENGTH

    def min_length(self) -> int:
        return MIN_INSTRUCTION_LENGTH

    # -- streaming progress property ---------------------------------------

    def streaming_progress_deficit(self) -> int:
        """Worst-case shortfall of ``length - bytes_examined``.

        A *chunked* hardware decoder (see :mod:`repro.ild.streaming`)
        can only carry decode state forward: once a chunk's marks are
        emitted, an instruction start can never be placed in an earlier
        chunk.  That requires the **progress property**: every decoded
        length covers at least the bytes examined to decide it
        (otherwise the next instruction could start at an
        already-emitted position behind a chunk boundary).

        Because each contribution/need pair depends on one byte only,
        the exact worst case factorizes into independent per-byte
        minima.  Returns ``max(bytes_examined - length)`` over all
        byte windows; ``<= 0`` means the ISA is streaming-safe.
        """
        all_bytes = range(256)

        def minimum(fn, predicate=None):
            values = [
                fn(b) for b in all_bytes if predicate is None or predicate(b)
            ]
            return min(values) if values else 0

        deficits = []
        # Walk ends after k bytes examined (k = 1..4).
        lc1_stop = minimum(
            self.length_contribution_1, lambda b: not self.need_2nd_byte(b)
        )
        deficits.append(1 - lc1_stop)
        lc1_go = minimum(
            self.length_contribution_1, lambda b: self.need_2nd_byte(b)
        )
        lc2_stop = minimum(
            self.length_contribution_2, lambda b: not self.need_3rd_byte(b)
        )
        deficits.append(2 - (lc1_go + lc2_stop))
        lc2_go = minimum(
            self.length_contribution_2, lambda b: self.need_3rd_byte(b)
        )
        lc3_stop = minimum(
            self.length_contribution_3, lambda b: not self.need_4th_byte(b)
        )
        deficits.append(3 - (lc1_go + lc2_go + lc3_stop))
        lc3_go = minimum(
            self.length_contribution_3, lambda b: self.need_4th_byte(b)
        )
        lc4 = minimum(self.length_contribution_4)
        deficits.append(4 - (lc1_go + lc2_go + lc3_go + lc4))
        return max(deficits)

    def is_streaming_safe(self) -> bool:
        """True when the progress property holds (see
        :meth:`streaming_progress_deficit`)."""
        return self.streaming_progress_deficit() <= 0


@dataclass(frozen=True)
class StreamingSafeISA(SyntheticISA):
    """A synthetic ISA satisfying the streaming progress property.

    Every examined byte contributes at least 1 to the length (real
    variable-length ISAs behave this way: an examined byte is a
    prefix/opcode byte *of the instruction*), so a chunked decoder can
    always carry decode state strictly forward.  Ranges keep the
    paper's envelope: lengths 1..11 (4+3+3+1), up to 4 bytes examined.
    """

    def length_contribution_2(self, byte: int) -> int:
        return 1 + ((byte >> 2) & 0x1) + ((byte >> 4) & 0x1)  # 1..3

    def length_contribution_3(self, byte: int) -> int:
        return 1 + ((byte >> 3) & 0x1) + ((byte >> 6) & 0x1)  # 1..3

    def length_contribution_4(self, byte: int) -> int:
        return 1


DEFAULT_ISA = SyntheticISA()
STREAMING_ISA = StreamingSafeISA()


def random_buffer(
    n: int, seed: Optional[int] = None, rng: Optional[random.Random] = None
) -> List[int]:
    """A random instruction buffer of *n* bytes (1-based positions are
    used throughout the case study, so callers typically store this at
    positions 1..n of a size-(n+1) array)."""
    generator = rng or random.Random(seed)
    return [generator.randrange(256) for _ in range(n)]


def crafted_buffer(lengths: Sequence[int], n: int) -> List[int]:
    """Build a buffer whose decoded instruction lengths are exactly
    *lengths* (each 1..4 using only single-byte encodings: byte
    ``L-1`` gives LengthContribution_1 = L with Need_2nd = 0).

    Useful for directed tests: the expected Mark vector is then known
    by construction, independent of the golden model.
    """
    buffer: List[int] = []
    for length in lengths:
        if not 1 <= length <= 4:
            raise ValueError("crafted single-byte encodings cover lengths 1..4")
        buffer.append(length - 1)  # lc1 = 1 + (byte & 3), bit7 clear
        buffer.extend(0 for _ in range(length - 1))
    if len(buffer) > n:
        raise ValueError(f"lengths need {len(buffer)} bytes, buffer holds {n}")
    buffer.extend(0 for _ in range(n - len(buffer)))
    return buffer
