"""Static analysis and verification over the synthesis IR.

The verifier (:mod:`repro.analysis.verifier`) is the static
correctness backstop for the transformation pipeline: a battery of
checks over the HTG/CFG, the schedule and the bindings that turns a
silent mis-transformation into a pinpointed "pass X broke invariant Y
on block Z" diagnostic.  It runs standalone (``repro verify``),
after every transform pass (``--verify-each``), and inside DSE
workers (``repro dse --verify-each``).
"""

from repro.analysis.verifier import (
    ALL_INVARIANTS,
    BINDING_INVARIANTS,
    DESIGN_INVARIANTS,
    SCHEDULE_INVARIANTS,
    VerifierError,
    Violation,
    check_binding,
    check_design,
    check_schedule,
    verify_binding,
    verify_design,
    verify_schedule,
)

__all__ = [
    "ALL_INVARIANTS",
    "BINDING_INVARIANTS",
    "DESIGN_INVARIANTS",
    "SCHEDULE_INVARIANTS",
    "VerifierError",
    "Violation",
    "check_binding",
    "check_design",
    "check_schedule",
    "verify_binding",
    "verify_design",
    "verify_schedule",
]
