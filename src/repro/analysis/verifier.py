"""The IR verifier: pass-invariant static checks over HTG, schedule
and binding.

Spark's value proposition is aggressive speculative code motion — and
the paper is explicit that those are exactly the transformations that
can silently break semantics.  The only oracle the repo had before
this module was *dynamic* (the interpreter-vs-RTL differential
harness); this module adds the *static* oracle: an LLVM
``-verify-each``-style battery of invariant checks that can be
interposed after every transform pass and every flow stage.

Three check families, each over one artifact level:

**Design level** (:func:`verify_design`), over the HTG + its CFG:

* ``htg-structure`` — structural well-formedness: assignment targets
  are scalars or array elements, every referenced array is declared,
  every call resolves to a known (internal or external) function,
  operation uids are unique (duplicated uids break every
  uid-keyed map downstream, e.g. FU assignment).
* ``cfg-consistency`` — the HTG lowers to a well-formed CFG: branch
  nodes carry exactly a true and a false successor, non-branch nodes
  never fan out, ``break`` only appears inside loops.
* ``def-before-use`` — every scalar read is reached by at least one
  definition (:func:`repro.ir.dataflow.compute_reaching_definitions`
  seeded with the function's entry-live variables).  This is the
  check that catches a bad code motion hoisting a use above its def.
* ``speculation`` — every operation marked ``is_speculated`` is
  actually *speculatable* under the paper's semantics: a scalar
  assignment (no memory writes) whose calls are all known-pure —
  the same legality predicate the speculation passes apply, asserted
  after the fact.
* ``wire-copy`` — ``is_wire_copy`` implies the op is a plain
  variable-to-variable copy.

**Schedule level** (:func:`verify_schedule`), over the FSMD:

* ``schedule-structure`` — state transitions target existing states,
  item timestamps are sane, no operation is scheduled twice.
* ``schedule-chaining`` — within each state, every operand is read at
  or after the in-cycle time its producer finishes (the chaining
  contract); values not written earlier in the state are register
  reads and may start at 0.
* ``schedule-timing`` — no combinational chain exceeds the clock
  period.
* ``schedule-resources`` — re-derive each state's FU demand with the
  scheduler's own conservative usage model (one unit per operator
  occurrence, mutual-exclusion sharing across conditional branches)
  and assert it fits the resource allocation in every cycle.

**Binding level** (:func:`verify_binding`):

* ``binding-registers`` — no storage register holds two variables
  that are simultaneously live (re-derived from
  :class:`repro.binding.lifetimes.LifetimeAnalysis`), and every
  register-resident variable is assigned a register.
* ``binding-fus`` — every scheduled operation that needs functional
  units has an FU assignment, and every assignment points at an
  instance that exists.

Violations are collected into :class:`Violation` records (invariant
name, function, block/state location, operation uid + text + source
line) and raised as a structured :class:`VerifierError` whose
``context`` carries the pass / stage provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.binding.fu_binding import FUBinding
from repro.binding.lifetimes import LifetimeAnalysis
from repro.binding.register_binding import RegisterBinding
from repro.frontend.ast_nodes import ArrayRef, Expr, Var
from repro.ir import expr_utils
from repro.ir.cfg import ControlFlowGraph, build_cfg
from repro.ir.dataflow import compute_reaching_definitions
from repro.ir.htg import Design, FunctionHTG, IfNode, LoopNode, walk_nodes
from repro.ir.operations import Operation, OpKind
from repro.scheduler.resources import ResourceAllocation, ResourceLibrary
from repro.scheduler.schedule import IfItem, Item, OpItem, State, StateMachine
from repro.scheduler.timing import (
    expr_units,
    max_usage,
    merge_usage,
    operation_units,
)

#: Design-level invariants (checked after the frontend and after every
#: transform pass).
HTG_STRUCTURE = "htg-structure"
CFG_CONSISTENCY = "cfg-consistency"
DEF_BEFORE_USE = "def-before-use"
SPECULATION = "speculation"
WIRE_COPY = "wire-copy"

#: Schedule-level invariants (checked after the schedule stage).
SCHEDULE_STRUCTURE = "schedule-structure"
SCHEDULE_CHAINING = "schedule-chaining"
SCHEDULE_TIMING = "schedule-timing"
SCHEDULE_RESOURCES = "schedule-resources"

#: Binding-level invariants (checked after the bind stage).
BINDING_REGISTERS = "binding-registers"
BINDING_FUS = "binding-fus"

DESIGN_INVARIANTS: Tuple[str, ...] = (
    HTG_STRUCTURE,
    CFG_CONSISTENCY,
    DEF_BEFORE_USE,
    SPECULATION,
    WIRE_COPY,
)
SCHEDULE_INVARIANTS: Tuple[str, ...] = (
    SCHEDULE_STRUCTURE,
    SCHEDULE_CHAINING,
    SCHEDULE_TIMING,
    SCHEDULE_RESOURCES,
)
BINDING_INVARIANTS: Tuple[str, ...] = (
    BINDING_REGISTERS,
    BINDING_FUS,
)
ALL_INVARIANTS: Tuple[str, ...] = (
    DESIGN_INVARIANTS + SCHEDULE_INVARIANTS + BINDING_INVARIANTS
)

#: Slack for floating-point timestamp comparisons within a cycle.
_EPS = 1e-6


@dataclass
class Violation:
    """One invariant violation, with enough provenance to act on."""

    invariant: str
    message: str
    function: str = ""
    location: str = ""
    op_uid: Optional[int] = None
    op_text: str = ""
    source_line: Optional[int] = None

    def describe(self) -> str:
        where = ":".join(part for part in (self.function, self.location) if part)
        text = f"[{self.invariant}]"
        if where:
            text += f" {where}"
        text += f": {self.message}"
        if self.op_text:
            text += f" (op #{self.op_uid}: `{self.op_text}`"
            if self.source_line is not None:
                text += f", line {self.source_line}"
            text += ")"
        return text

    @classmethod
    def for_op(
        cls,
        invariant: str,
        message: str,
        op: Operation,
        function: str = "",
        location: str = "",
    ) -> "Violation":
        return cls(
            invariant=invariant,
            message=message,
            function=function,
            location=location,
            op_uid=op.uid,
            op_text=str(op),
            source_line=op.source_line or None,
        )


class VerifierError(Exception):
    """A batch of invariant violations, with pass/stage provenance.

    ``context`` names where in the flow the check ran (e.g. ``after
    pass `speculation```, ``transform stage boundary``); each
    :class:`Violation` names the invariant, function, block/state and
    operation.
    """

    def __init__(self, violations: Sequence[Violation], context: str = "") -> None:
        self.violations: List[Violation] = list(violations)
        self.context = context
        head = f"verifier: {len(self.violations)} violation(s)"
        if context:
            head += f" {context}"
        lines = [head] + [
            f"  - {violation.describe()}" for violation in self.violations
        ]
        super().__init__("\n".join(lines))

    @property
    def invariants(self) -> Set[str]:
        return {violation.invariant for violation in self.violations}


def _selected(
    family: Tuple[str, ...],
    invariants: Optional[Iterable[str]],
    skip: Iterable[str],
) -> Set[str]:
    chosen = set(invariants) if invariants is not None else set(family)
    return (chosen & set(family)) - set(skip)


# ---------------------------------------------------------------------------
# Design-level checks
# ---------------------------------------------------------------------------


def verify_design(
    design: Design,
    pure_functions: Optional[Iterable[str]] = None,
    invariants: Optional[Iterable[str]] = None,
    skip: Iterable[str] = (),
) -> List[Violation]:
    """Run the design-level battery; returns violations, raises nothing."""
    active = _selected(DESIGN_INVARIANTS, invariants, skip)
    if not active:
        return []
    pure = set(pure_functions or ())
    violations: List[Violation] = []
    for func in design.functions.values():
        if HTG_STRUCTURE in active:
            violations.extend(_check_htg_structure(func, design))
        cfg: Optional[ControlFlowGraph] = None
        if CFG_CONSISTENCY in active or DEF_BEFORE_USE in active:
            cfg, cfg_violations = _check_cfg_consistency(func)
            if CFG_CONSISTENCY in active:
                violations.extend(cfg_violations)
        if DEF_BEFORE_USE in active and cfg is not None:
            violations.extend(_check_def_before_use(func, cfg))
        if SPECULATION in active:
            violations.extend(_check_speculation(func, design, pure))
        if WIRE_COPY in active:
            violations.extend(_check_wire_copies(func))
    return violations


def check_design(
    design: Design,
    pure_functions: Optional[Iterable[str]] = None,
    invariants: Optional[Iterable[str]] = None,
    skip: Iterable[str] = (),
    context: str = "",
) -> None:
    """:func:`verify_design`, raising :class:`VerifierError` on failure."""
    violations = verify_design(design, pure_functions, invariants, skip)
    if violations:
        raise VerifierError(violations, context=context)


def _known_callees(design: Design) -> Set[str]:
    return set(design.functions) | set(design.external_functions)


def _op_calls(op: Operation) -> List[str]:
    names: List[str] = []
    for expr in _op_exprs(op):
        names.extend(call.name for call in expr_utils.calls_in(expr))
    return names


def _op_exprs(op: Operation) -> List[Expr]:
    exprs: List[Expr] = []
    if op.expr is not None:
        exprs.append(op.expr)
    if isinstance(op.target, ArrayRef):
        exprs.append(op.target.index)
    return exprs


def _check_htg_structure(func: FunctionHTG, design: Design) -> List[Violation]:
    violations: List[Violation] = []
    callees = _known_callees(design)
    seen_uids: Dict[int, Operation] = {}
    for op in func.walk_operations():
        if op.uid in seen_uids and seen_uids[op.uid] is not op:
            violations.append(
                Violation.for_op(
                    HTG_STRUCTURE,
                    f"operation uid {op.uid} is not unique within the function",
                    op,
                    function=func.name,
                )
            )
        elif seen_uids.get(op.uid) is op:
            violations.append(
                Violation.for_op(
                    HTG_STRUCTURE,
                    f"operation object #{op.uid} appears twice in the HTG "
                    f"(aliased, not cloned)",
                    op,
                    function=func.name,
                )
            )
        seen_uids[op.uid] = op
        if op.kind is OpKind.ASSIGN and not isinstance(op.target, (Var, ArrayRef)):
            violations.append(
                Violation.for_op(
                    HTG_STRUCTURE,
                    f"assignment target must be a variable or array element, "
                    f"got {type(op.target).__name__}",
                    op,
                    function=func.name,
                )
            )
        for array in sorted(op.arrays_read() | op.arrays_written()):
            if array not in func.arrays:
                violations.append(
                    Violation.for_op(
                        HTG_STRUCTURE,
                        f"reference to undeclared array `{array}`",
                        op,
                        function=func.name,
                    )
                )
        for callee in _op_calls(op):
            if callee not in callees:
                violations.append(
                    Violation.for_op(
                        HTG_STRUCTURE,
                        f"call to unknown function `{callee}`",
                        op,
                        function=func.name,
                    )
                )
    return violations


def _check_cfg_consistency(
    func: FunctionHTG,
) -> Tuple[Optional[ControlFlowGraph], List[Violation]]:
    """Lower to a CFG and check edge discipline.  Returns the CFG (for
    the dataflow checks) or None when lowering itself fails."""
    violations: List[Violation] = []
    try:
        cfg = build_cfg(func)
    except ValueError as error:
        violations.append(
            Violation(
                invariant=CFG_CONSISTENCY,
                message=f"HTG does not lower to a CFG: {error}",
                function=func.name,
            )
        )
        return None, violations
    for node in cfg.nodes():
        successors = cfg.successors(node)
        where = repr(node)
        if node.kind == "branch":
            labels = sorted(
                str(cfg.edge_label(node, successor)) for successor in successors
            )
            if labels != ["false", "true"]:
                violations.append(
                    Violation(
                        invariant=CFG_CONSISTENCY,
                        message=(
                            f"branch node must have exactly a true and a false "
                            f"successor, got labels {labels}"
                        ),
                        function=func.name,
                        location=where,
                    )
                )
        elif node.kind == "exit":
            if successors:
                violations.append(
                    Violation(
                        invariant=CFG_CONSISTENCY,
                        message="exit node has successors",
                        function=func.name,
                        location=where,
                    )
                )
        elif len(successors) > 1:
            violations.append(
                Violation(
                    invariant=CFG_CONSISTENCY,
                    message=(
                        f"non-branch node fans out to {len(successors)} "
                        f"successors"
                    ),
                    function=func.name,
                    location=where,
                )
            )
    return cfg, violations


def entry_variables(func: FunctionHTG) -> Set[str]:
    """Variables treated as defined at function entry for the
    def-before-use check: parameters, plus scalars that are read
    somewhere but never written anywhere (external inputs wired
    straight into the datapath)."""
    written: Set[str] = set()
    read: Set[str] = set()
    for op in func.walk_operations():
        written |= op.writes()
        read |= op.reads()
    for node in walk_nodes(func.body):
        if isinstance(node, (IfNode, LoopNode)) and node.cond is not None:
            read |= expr_utils.variables_read(node.cond)
    return set(func.params) | (read - written)


def _check_def_before_use(
    func: FunctionHTG, cfg: ControlFlowGraph
) -> List[Violation]:
    violations: List[Violation] = []
    reaching = compute_reaching_definitions(
        cfg, entry_variables=entry_variables(func)
    )
    for node in cfg.nodes():
        reach_in = reaching.reach_in.get(node.node_id, frozenset())
        defined = {variable for variable, _uid in reach_in}
        if node.kind == "branch" and node.cond is not None:
            for variable in sorted(expr_utils.variables_read(node.cond)):
                if variable not in defined and variable not in func.arrays:
                    violations.append(
                        Violation(
                            invariant=DEF_BEFORE_USE,
                            message=(
                                f"branch condition reads `{variable}` but no "
                                f"definition reaches it"
                            ),
                            function=func.name,
                            location=repr(node),
                        )
                    )
            continue
        if node.kind != "block" or node.block is None:
            continue
        local = set(defined)
        for op in node.block.ops:
            for variable in sorted(op.reads()):
                if variable not in local and variable not in func.arrays:
                    violations.append(
                        Violation.for_op(
                            DEF_BEFORE_USE,
                            f"reads `{variable}` but no definition reaches it",
                            op,
                            function=func.name,
                            location=node.block.label,
                        )
                    )
            local |= op.writes()
    return violations


def _check_speculation(
    func: FunctionHTG, design: Design, pure: Set[str]
) -> List[Violation]:
    """A speculated op executes before its guarding condition is known,
    so it must be side-effect free: a scalar assignment, no memory
    writes, only known-pure calls — the same predicate the speculation
    passes use to decide hoistability."""
    violations: List[Violation] = []
    for op in func.walk_operations():
        if not op.is_speculated:
            continue
        if op.kind is not OpKind.ASSIGN or not isinstance(op.target, Var):
            violations.append(
                Violation.for_op(
                    SPECULATION,
                    "speculated op must be a scalar assignment",
                    op,
                    function=func.name,
                )
            )
            continue
        if op.arrays_written():
            violations.append(
                Violation.for_op(
                    SPECULATION,
                    f"speculated op writes array(s) "
                    f"{sorted(op.arrays_written())}",
                    op,
                    function=func.name,
                )
            )
        impure = [name for name in _op_calls(op) if name not in pure]
        if impure:
            violations.append(
                Violation.for_op(
                    SPECULATION,
                    f"speculated op calls non-pure function(s) "
                    f"{sorted(set(impure))}",
                    op,
                    function=func.name,
                )
            )
    return violations


def _check_wire_copies(func: FunctionHTG) -> List[Violation]:
    violations: List[Violation] = []
    for op in func.walk_operations():
        if op.is_wire_copy and not op.is_copy():
            violations.append(
                Violation.for_op(
                    WIRE_COPY,
                    "marked as a wire copy but is not a variable-to-variable "
                    "copy",
                    op,
                    function=func.name,
                )
            )
    return violations


# ---------------------------------------------------------------------------
# Schedule-level checks
# ---------------------------------------------------------------------------


def verify_schedule(
    state_machine: StateMachine,
    library: Optional[ResourceLibrary] = None,
    allocation: Optional[ResourceAllocation] = None,
    invariants: Optional[Iterable[str]] = None,
    skip: Iterable[str] = (),
) -> List[Violation]:
    """Run the schedule-level battery over an FSMD."""
    active = _selected(SCHEDULE_INVARIANTS, invariants, skip)
    if not active:
        return []
    library = library or ResourceLibrary()
    violations: List[Violation] = []
    if SCHEDULE_STRUCTURE in active:
        violations.extend(_check_schedule_structure(state_machine))
    if SCHEDULE_CHAINING in active or SCHEDULE_TIMING in active:
        violations.extend(
            _check_schedule_timing(
                state_machine,
                check_chaining=SCHEDULE_CHAINING in active,
                check_clock=SCHEDULE_TIMING in active,
            )
        )
    if SCHEDULE_RESOURCES in active and allocation is not None:
        violations.extend(
            _check_schedule_resources(state_machine, library, allocation)
        )
    return violations


def check_schedule(
    state_machine: StateMachine,
    library: Optional[ResourceLibrary] = None,
    allocation: Optional[ResourceAllocation] = None,
    invariants: Optional[Iterable[str]] = None,
    skip: Iterable[str] = (),
    context: str = "",
) -> None:
    """:func:`verify_schedule`, raising :class:`VerifierError`."""
    violations = verify_schedule(
        state_machine, library, allocation, invariants, skip
    )
    if violations:
        raise VerifierError(violations, context=context)


def _check_schedule_structure(sm: StateMachine) -> List[Violation]:
    violations: List[Violation] = []
    func_name = sm.func.name

    def bad_target(state: State, role: str, target: object) -> Violation:
        return Violation(
            invariant=SCHEDULE_STRUCTURE,
            message=f"{role} targets unknown state {target!r}",
            function=func_name,
            location=f"S{state.state_id}",
        )

    if sm.entry_state not in sm.states:
        violations.append(
            Violation(
                invariant=SCHEDULE_STRUCTURE,
                message=f"entry state S{sm.entry_state} does not exist",
                function=func_name,
            )
        )
    seen_ops: Dict[int, int] = {}
    for state in sm.states.values():
        if state.default_next is not None and state.default_next not in sm.states:
            violations.append(bad_target(state, "default transition", state.default_next))
        if state.branch is not None:
            for role, target in (
                ("true branch", state.branch.true_next),
                ("false branch", state.branch.false_next),
            ):
                if target is not None and target not in sm.states:
                    violations.append(bad_target(state, role, target))
        for op, start, finish in _walk_items(state.items):
            if finish + _EPS < start or start < -_EPS:
                violations.append(
                    Violation.for_op(
                        SCHEDULE_STRUCTURE,
                        f"item has inverted timestamps "
                        f"(start {start:.3f}, finish {finish:.3f})",
                        op,
                        function=func_name,
                        location=f"S{state.state_id}",
                    )
                )
            if op.uid in seen_ops and seen_ops[op.uid] != state.state_id:
                violations.append(
                    Violation.for_op(
                        SCHEDULE_STRUCTURE,
                        f"operation scheduled in both "
                        f"S{seen_ops[op.uid]} and S{state.state_id}",
                        op,
                        function=func_name,
                        location=f"S{state.state_id}",
                    )
                )
            seen_ops.setdefault(op.uid, state.state_id)
    return violations


def _walk_items(
    items: Sequence[Item],
) -> Iterator[Tuple[Operation, float, float]]:
    """Yield ``(op, start, finish)`` for every OpItem, recursing
    through IfItem branches."""
    for item in items:
        if isinstance(item, OpItem):
            yield item.op, item.start, item.finish
        elif isinstance(item, IfItem):
            yield from _walk_items(item.then_items)
            yield from _walk_items(item.else_items)


def _items_written(items: Sequence[Item]) -> Set[str]:
    """Scalar and array names written anywhere in an item list."""
    written: Set[str] = set()
    for op, _start, _finish in _walk_items(items):
        written |= op.writes() | op.arrays_written()
    return written


def _check_schedule_timing(
    sm: StateMachine, check_chaining: bool, check_clock: bool
) -> List[Violation]:
    """One sequential walk per state checking both the chaining order
    (reads start no earlier than in-state producers finish) and the
    clock budget (no finish time past the period)."""
    violations: List[Violation] = []
    clock = sm.clock_period
    func_name = sm.func.name

    def check_items(
        items: Sequence[Item], ready: Dict[str, float], state: State
    ) -> Dict[str, float]:
        for item in items:
            if isinstance(item, OpItem):
                op = item.op
                if check_chaining:
                    for name in sorted(op.reads() | op.arrays_read()):
                        produced = ready.get(name, 0.0)
                        if item.start + _EPS < produced:
                            violations.append(
                                Violation.for_op(
                                    SCHEDULE_CHAINING,
                                    f"reads `{name}` at t={item.start:.3f} but "
                                    f"its in-state producer finishes at "
                                    f"t={produced:.3f}",
                                    op,
                                    function=func_name,
                                    location=f"S{state.state_id}",
                                )
                            )
                if check_clock and item.finish > clock + _EPS:
                    violations.append(
                        Violation.for_op(
                            SCHEDULE_TIMING,
                            f"finishes at t={item.finish:.3f} past the clock "
                            f"period {clock:.3f}",
                            op,
                            function=func_name,
                            location=f"S{state.state_id}",
                        )
                    )
                for name in op.writes() | op.arrays_written():
                    ready[name] = item.finish
            elif isinstance(item, IfItem):
                if check_clock and item.cond_ready > clock + _EPS:
                    violations.append(
                        Violation(
                            invariant=SCHEDULE_TIMING,
                            message=(
                                f"chained condition ready at "
                                f"t={item.cond_ready:.3f} past the clock "
                                f"period {clock:.3f}"
                            ),
                            function=func_name,
                            location=f"S{state.state_id}",
                        )
                    )
                then_ready = check_items(item.then_items, dict(ready), state)
                else_ready = check_items(item.else_items, dict(ready), state)
                # Only values the branches actually *write* leave the
                # conditional through steering muxes; merging their max
                # producer time (without the mux delay) under-
                # approximates readiness, so downstream checks stay
                # sound without false positives.  Names the branches
                # never touch keep their outer readiness.
                for name in _items_written(item.then_items) | _items_written(
                    item.else_items
                ):
                    ready[name] = max(
                        then_ready.get(name, ready.get(name, 0.0)),
                        else_ready.get(name, ready.get(name, 0.0)),
                        item.cond_ready,
                    )
        return ready

    for state in sm.states.values():
        check_items(state.items, {}, state)
    return violations


def _state_usage(items: Sequence[Item], library: ResourceLibrary) -> Dict[str, int]:
    """Per-cycle FU demand of one item list, mirroring the scheduler's
    own accounting: one unit per operator occurrence, summed across
    sequential items, with elementwise *max* across the two branches of
    a conditional (mutually exclusive ops share instances).  The FSM-
    level branch condition and join steering muxes are deliberately
    not counted — the scheduler does not charge them against the
    allocation either."""
    usage: Dict[str, int] = {}
    for item in items:
        if isinstance(item, OpItem):
            usage = merge_usage(usage, operation_units(item.op, library))
        elif isinstance(item, IfItem):
            branch = max_usage(
                _state_usage(item.then_items, library),
                _state_usage(item.else_items, library),
            )
            usage = merge_usage(usage, merge_usage(
                expr_units(item.cond, library), branch
            ))
    return usage


def _loop_update_uids(func: FunctionHTG) -> Set[int]:
    """Uids of rolled-loop update (bookkeeping) operations.  The
    scheduler places these into the loop body's tail state under a
    *fresh* usage tally — their demand is tracked separately from the
    body's, not added to it — so the resource check must tally them
    separately too."""
    uids: Set[int] = set()
    for node in walk_nodes(func.body):
        if isinstance(node, LoopNode):
            for op in node.update:
                uids.add(op.uid)
    return uids


def _check_schedule_resources(
    sm: StateMachine, library: ResourceLibrary, allocation: ResourceAllocation
) -> List[Violation]:
    """Re-derive each state's FU demand and assert the allocation is
    honoured in every cycle, under the scheduler's own accounting:
    loop-update bookkeeping ops keep their separate usage tally."""
    violations: List[Violation] = []
    update_uids = _loop_update_uids(sm.func)
    for state in sm.states.values():
        main_items = [
            item
            for item in state.items
            if not (isinstance(item, OpItem) and item.op.uid in update_uids)
        ]
        update_items = [
            item
            for item in state.items
            if isinstance(item, OpItem) and item.op.uid in update_uids
        ]
        for tally, items in (("", main_items), ("loop-update ", update_items)):
            usage = _state_usage(items, library)
            for unit_class, count in sorted(usage.items()):
                limit = allocation.limit_for(unit_class)
                if limit is not None and count > limit:
                    violations.append(
                        Violation(
                            invariant=SCHEDULE_RESOURCES,
                            message=(
                                f"state needs {count} {tally}`{unit_class}` "
                                f"instance(s) in one cycle but the "
                                f"allocation grants {limit}"
                            ),
                            function=sm.func.name,
                            location=f"S{state.state_id}",
                        )
                    )
    return violations


# ---------------------------------------------------------------------------
# Binding-level checks
# ---------------------------------------------------------------------------


def verify_binding(
    state_machine: StateMachine,
    lifetimes: LifetimeAnalysis,
    register_binding: RegisterBinding,
    fu_binding: Optional[FUBinding] = None,
    library: Optional[ResourceLibrary] = None,
    invariants: Optional[Iterable[str]] = None,
    skip: Iterable[str] = (),
) -> List[Violation]:
    """Run the binding-level battery."""
    active = _selected(BINDING_INVARIANTS, invariants, skip)
    if not active:
        return []
    violations: List[Violation] = []
    if BINDING_REGISTERS in active:
        violations.extend(
            _check_register_binding(state_machine, lifetimes, register_binding)
        )
    if BINDING_FUS in active and fu_binding is not None:
        violations.extend(
            _check_fu_binding(state_machine, fu_binding, library or ResourceLibrary())
        )
    return violations


def check_binding(
    state_machine: StateMachine,
    lifetimes: LifetimeAnalysis,
    register_binding: RegisterBinding,
    fu_binding: Optional[FUBinding] = None,
    library: Optional[ResourceLibrary] = None,
    invariants: Optional[Iterable[str]] = None,
    skip: Iterable[str] = (),
    context: str = "",
) -> None:
    """:func:`verify_binding`, raising :class:`VerifierError`."""
    violations = verify_binding(
        state_machine,
        lifetimes,
        register_binding,
        fu_binding,
        library,
        invariants,
        skip,
    )
    if violations:
        raise VerifierError(violations, context=context)


def _check_register_binding(
    sm: StateMachine,
    lifetimes: LifetimeAnalysis,
    binding: RegisterBinding,
) -> List[Violation]:
    violations: List[Violation] = []
    func_name = sm.func.name
    for variable in sorted(lifetimes.registers()):
        if variable not in binding.assignment:
            violations.append(
                Violation(
                    invariant=BINDING_REGISTERS,
                    message=(
                        f"register-resident variable `{variable}` has no "
                        f"register assignment"
                    ),
                    function=func_name,
                )
            )
    for register, group in enumerate(binding.groups):
        occupied: Dict[int, str] = {}
        for variable in group:
            for state_id in lifetimes.lifetime_states(variable):
                other = occupied.get(state_id)
                if other is not None and other != variable:
                    violations.append(
                        Violation(
                            invariant=BINDING_REGISTERS,
                            message=(
                                f"register r{register} holds `{other}` and "
                                f"`{variable}`, both live in S{state_id}"
                            ),
                            function=func_name,
                            location=f"S{state_id}",
                        )
                    )
                    break
                occupied[state_id] = variable
    return violations


def _check_fu_binding(
    sm: StateMachine, fus: FUBinding, library: ResourceLibrary
) -> List[Violation]:
    violations: List[Violation] = []
    func_name = sm.func.name
    for state in sm.reachable_states():
        for item in state.operations():
            op = item.op
            try:
                needs = operation_units(op, library)
            except Exception:
                continue
            assigned = fus.op_assignment.get(op.uid, [])
            if needs and not assigned:
                violations.append(
                    Violation.for_op(
                        BINDING_FUS,
                        f"needs functional units {sorted(needs)} but has no "
                        f"FU assignment",
                        op,
                        function=func_name,
                        location=f"S{state.state_id}",
                    )
                )
                continue
            for unit_class, index in assigned:
                available = fus.instance_counts.get(unit_class, 0)
                if index >= available:
                    violations.append(
                        Violation.for_op(
                            BINDING_FUS,
                            f"assigned to `{unit_class}` instance {index} but "
                            f"only {available} exist",
                            op,
                            function=func_name,
                            location=f"S{state.state_id}",
                        )
                    )
    return violations
