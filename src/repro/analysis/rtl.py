"""Static RTL linter: netlist, FSM and cross-layer checks over the
emitted backends.

The dynamic differential simulator exercises one input vector per run;
this module closes the emit stage boundary *statically*.  It parses
the emitted Verilog and VHDL back into a small :class:`NetlistModel`
(ports, registers, memories, shadow variables, state constants, case
arms, assignment graph) and checks it — together with the scheduler's
:class:`StateMachine` — against three tiers of invariants:

* **netlist** — undriven-signal reads, conflicting same-state writes,
  dead registers, latch-inference hazards, declaration/usage
  consistency against the :class:`DesignInterface`;
* **FSM** — unreachable states, livelock, non-exhaustive and
  non-exclusive case arms, dangling state references;
* **cross-layer** — schedule-states↔case-arms bijection, every bound
  register and external FU realized exactly once per backend, and
  Verilog↔VHDL declared-signal parity (emitter drift caught
  statically instead of via golden churn).

The module mirrors :mod:`repro.analysis.verifier`: each check has a
stable invariant id, :func:`verify_rtl` returns the violation list and
:func:`check_rtl` raises :class:`VerifierError` on any hit, so flow
and DSE plumbing treat emit-stage failures exactly like pass-level
verifier failures (``error_kind="verifier"``, never cached).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.verifier import VerifierError, Violation, _selected
from repro.backend.hdl_common import collect_externals, state_constant_name
from repro.backend.interface import DesignInterface
from repro.binding.lifetimes import LifetimeAnalysis
from repro.ir import expr_utils
from repro.scheduler.schedule import IfItem, Item, OpItem, State, StateMachine

# -- netlist tier -----------------------------------------------------------
RTL_UNDRIVEN = "rtl-undriven"
RTL_CONFLICT = "rtl-conflict"
RTL_DEAD_REGISTER = "rtl-dead-register"
RTL_LATCH = "rtl-latch"
RTL_DECL = "rtl-decl"

# -- FSM tier ---------------------------------------------------------------
FSM_UNREACHABLE = "fsm-unreachable"
FSM_LIVELOCK = "fsm-livelock"
FSM_CASE = "fsm-case"
FSM_DANGLING = "fsm-dangling"

# -- cross-layer tier -------------------------------------------------------
CROSS_STATES = "cross-states"
CROSS_BINDING = "cross-binding"
RTL_PARITY = "rtl-parity"

NETLIST_INVARIANTS: Tuple[str, ...] = (
    RTL_UNDRIVEN,
    RTL_CONFLICT,
    RTL_DEAD_REGISTER,
    RTL_LATCH,
    RTL_DECL,
)
FSM_INVARIANTS: Tuple[str, ...] = (
    FSM_UNREACHABLE,
    FSM_LIVELOCK,
    FSM_CASE,
    FSM_DANGLING,
)
CROSS_INVARIANTS: Tuple[str, ...] = (
    CROSS_STATES,
    CROSS_BINDING,
    RTL_PARITY,
)
RTL_INVARIANTS: Tuple[str, ...] = (
    NETLIST_INVARIANTS + FSM_INVARIANTS + CROSS_INVARIANTS
)


# ---------------------------------------------------------------------------
# Netlist models parsed back out of the emitted HDL
# ---------------------------------------------------------------------------


@dataclass
class NetlistModel:
    """What the linter needs to know about one emitted backend.

    Declaration lists keep order and duplicates (the exactly-once
    checks need multiplicity); ``assigned``/``read`` track the
    shadow-prefixed names (``r_``/``v_``/``m_``/``a_``) that appear on
    the left/right of assignments in the behavioural text.
    """

    backend: str
    ports: Set[str] = field(default_factory=set)
    registers: List[str] = field(default_factory=list)
    memories: List[str] = field(default_factory=list)
    scalars: List[str] = field(default_factory=list)
    array_shadows: List[str] = field(default_factory=list)
    state_constants: List[str] = field(default_factory=list)
    case_labels: List[str] = field(default_factory=list)
    has_default_arm: bool = False
    state_refs: Set[str] = field(default_factory=set)
    externals: List[str] = field(default_factory=list)
    assigned: Set[str] = field(default_factory=set)
    read: Set[str] = field(default_factory=set)
    committed: Dict[str, int] = field(default_factory=dict)


_PREFIXED = re.compile(r"\b([rvma]_\w+)\b")
_SCONST = re.compile(r"\b(S\w+)\b")
# LHS of an assignment: identifier, optional (possibly nested) index,
# then one of the three assignment operators.  Greedy bracket match
# with backtracking handles computed indices like `m_x[(v_i + 1)]`.
_ASSIGN = re.compile(
    r"^\s*([A-Za-z_]\w*)\s*([\[(].*[\])])?\s*(:=|<=|=)\s*(.+)$"
)

_V_PORT = re.compile(
    r"^\s*(?:input|output)\s+(?:wire|reg)\s+(?:signed\s+\[31:0\]\s+)?(\w+)"
)
_V_LOCALPARAM = re.compile(r"^\s*localparam\s+(\w+)\s*=")
_V_DECL = re.compile(
    r"^\s*reg\s+signed\s+\[31:0\]\s+([rvm]_\w+)\s*(\[[^\]]*\])?\s*;"
)
_V_FUNC = re.compile(r"^\s*function\s+automatic\s+signed\s+\[31:0\]\s+(\w+)")
_V_CASE_LABEL = re.compile(r"^\s*(\w+)\s*:\s*begin")
_V_DEFAULT = re.compile(r"^\s*default\s*:")
_V_SKIP = re.compile(
    r"^\s*(module\b|endmodule\b|case\b|endcase\b|always\b|integer\b|reg\b|\)|$)"
)

_H_PORT = re.compile(r"^\s*(\w+)\s*:\s*(?:in|out)\s")
_H_STATE_TYPE = re.compile(r"^\s*type\s+state_t\s+is\s+\(([^)]*)\)")
_H_SIGNAL = re.compile(r"^\s*signal\s+(\w+)\s*:")
_H_VARIABLE = re.compile(r"^\s*variable\s+(\w+)\s*:")
_H_FUNC = re.compile(r"^\s*function\s+(\w+)\s*\(")
_H_CASE_LABEL = re.compile(r"^\s*when\s+(\w+)\s*=>")
_H_OTHERS = re.compile(r"^\s*when\s+others\s*=>")


def _strip_comment(line: str, marker: str) -> str:
    pos = line.find(marker)
    return line if pos < 0 else line[:pos]


def _scan_assignment(model: NetlistModel, line: str) -> bool:
    """Record assigned/read prefixed names (and FSM state references)
    for one behavioural line.  Returns True if the line was an
    assignment."""
    match = _ASSIGN.match(line)
    if match is None:
        model.read.update(_PREFIXED.findall(line))
        return False
    lhs, index, op, rhs = match.groups()
    if _PREFIXED.fullmatch(lhs):
        model.assigned.add(lhs)
    elif lhs == "state":
        model.state_refs.update(_SCONST.findall(rhs))
    if op == "<=" and (
        lhs.startswith(("r_", "m_")) or lhs.endswith("_out")
    ):
        model.committed[lhs] = model.committed.get(lhs, 0) + 1
    if index:
        model.read.update(_PREFIXED.findall(index))
    model.read.update(_PREFIXED.findall(rhs))
    return True


def _bucket_decl(model: NetlistModel, name: str) -> None:
    if name.startswith("r_"):
        model.registers.append(name[2:])
    elif name.startswith("m_"):
        model.memories.append(name[2:])
    elif name.startswith("v_"):
        model.scalars.append(name[2:])
    elif name.startswith("a_"):
        model.array_shadows.append(name[2:])


def parse_verilog(text: str) -> NetlistModel:
    """Parse the emitted Verilog module into a :class:`NetlistModel`."""
    model = NetlistModel(backend="verilog")
    for raw in text.splitlines():
        line = _strip_comment(raw, "//")
        if not line.strip():
            continue
        port = _V_PORT.match(line)
        if port:
            model.ports.add(port.group(1))
            continue
        localparam = _V_LOCALPARAM.match(line)
        if localparam:
            model.state_constants.append(localparam.group(1))
            continue
        decl = _V_DECL.match(line)
        if decl:
            _bucket_decl(model, decl.group(1))
            continue
        func = _V_FUNC.match(line)
        if func:
            model.externals.append(func.group(1))
            continue
        if _V_DEFAULT.match(line):
            model.has_default_arm = True
            continue
        label = _V_CASE_LABEL.match(line)
        if label:
            model.case_labels.append(label.group(1))
            continue
        if _V_SKIP.match(line):
            continue
        _scan_assignment(model, line)
    return model


def parse_vhdl(text: str) -> NetlistModel:
    """Parse the emitted VHDL (package + entity + architecture) into a
    :class:`NetlistModel`."""
    model = NetlistModel(backend="vhdl")
    for raw in text.splitlines():
        line = _strip_comment(raw, "--")
        if not line.strip():
            continue
        state_type = _H_STATE_TYPE.match(line)
        if state_type:
            names = [n.strip() for n in state_type.group(1).split(",")]
            model.state_constants.extend(n for n in names if n)
            continue
        signal = _H_SIGNAL.match(line)
        if signal:
            _bucket_decl(model, signal.group(1))
            continue
        variable = _H_VARIABLE.match(line)
        if variable:
            _bucket_decl(model, variable.group(1))
            continue
        func = _H_FUNC.match(line)
        if func:
            model.externals.append(func.group(1))
            continue
        if _H_OTHERS.match(line):
            model.has_default_arm = True
            continue
        label = _H_CASE_LABEL.match(line)
        if label:
            model.case_labels.append(label.group(1))
            continue
        port = _H_PORT.match(line)
        if port:
            model.ports.add(port.group(1))
            continue
        _scan_assignment(model, line)
    return model


# ---------------------------------------------------------------------------
# Netlist-tier checks
# ---------------------------------------------------------------------------


def _check_undriven(model: NetlistModel, function: str) -> List[Violation]:
    """Prefixed names read somewhere but assigned nowhere.

    Memories (``m_``) are exempt: a read-only scratch array is legal —
    its contents are simulator-zero-filled, not driven by the FSMD.
    """
    violations = []
    for name in sorted(model.read - model.assigned):
        if name.startswith("m_"):
            continue
        violations.append(
            Violation(
                invariant=RTL_UNDRIVEN,
                message=(
                    f"`{name}` is read but never assigned in the "
                    f"{model.backend} text"
                ),
                function=function,
                location=model.backend,
            )
        )
    return violations


def _check_dead_registers(model: NetlistModel, function: str) -> List[Violation]:
    violations = []
    for name in sorted(set(model.registers)):
        if f"r_{name}" not in model.read:
            violations.append(
                Violation(
                    invariant=RTL_DEAD_REGISTER,
                    message=(
                        f"register `r_{name}` is declared/written but "
                        f"never read in the {model.backend} text"
                    ),
                    function=function,
                    location=model.backend,
                )
            )
    return violations


def _check_conflicts(model: NetlistModel, function: str) -> List[Violation]:
    """Conflicting writes to one storage element: the shadow-variable
    FSMD commits every register, memory and output port through
    exactly one nonblocking (signal) drive per cycle.  A second drive
    of the same name is a last-write-wins race the pattern forbids —
    in-state blocking assignments are textually sequenced and cannot
    conflict, so the commit layer is where a conflict can exist."""
    violations = []
    for name in sorted(model.committed):
        count = model.committed[name]
        if count > 1:
            violations.append(
                Violation(
                    invariant=RTL_CONFLICT,
                    message=(
                        f"`{name}` has {count} nonblocking drives in the "
                        f"{model.backend} text (conflicting writes; "
                        f"expected exactly one commit)"
                    ),
                    function=function,
                    location=model.backend,
                )
            )
    return violations


def _walk_latch_hazards(
    items: Sequence[Item],
    must: Set[str],
    maybe: Set[str],
    safe: Set[str],
    state: State,
    model: NetlistModel,
    function: str,
    violations: List[Violation],
) -> Tuple[Set[str], Set[str]]:
    def flag(names: Iterable[str], op: Optional[OpItem]) -> None:
        for name in sorted(names):
            if name in maybe and name not in must and name not in safe:
                message = (
                    f"`{name}` is only conditionally assigned before "
                    f"this read and has no backing register in the "
                    f"{model.backend} text (latch inference hazard)"
                )
                if op is not None:
                    violations.append(
                        Violation.for_op(
                            RTL_LATCH,
                            message,
                            op.op,
                            function=function,
                            location=f"S{state.state_id}:{model.backend}",
                        )
                    )
                else:
                    violations.append(
                        Violation(
                            invariant=RTL_LATCH,
                            message=message,
                            function=function,
                            location=f"S{state.state_id}:{model.backend}",
                        )
                    )

    for item in items:
        if isinstance(item, OpItem):
            flag(item.op.reads(), item)
            must |= item.op.writes()
            maybe |= item.op.writes()
        elif isinstance(item, IfItem):
            flag(expr_utils.variables_read(item.cond), None)
            then_must, then_maybe = _walk_latch_hazards(
                item.then_items, set(must), set(maybe), safe, state, model,
                function, violations,
            )
            else_must, else_maybe = _walk_latch_hazards(
                item.else_items, set(must), set(maybe), safe, state, model,
                function, violations,
            )
            must = then_must & else_must
            maybe = then_maybe | else_maybe
    return must, maybe


def _check_latches(
    sm: StateMachine,
    model: NetlistModel,
    interface: DesignInterface,
    function: str,
) -> List[Violation]:
    """A read of a scalar that was assigned on *some* but not *all*
    paths earlier in the state, with no backing register declared in
    the HDL: the value on the unassigned path is stale — exactly the
    shape that infers a latch in synthesis."""
    safe = set(model.registers) | set(interface.scalar_inputs)
    violations: List[Violation] = []
    for state in sm.reachable_states():
        must, maybe = _walk_latch_hazards(
            state.items, set(), set(), safe, state, model, function, violations
        )
        if state.branch is not None:
            for name in sorted(expr_utils.variables_read(state.branch.cond)):
                if name in maybe and name not in must and name not in safe:
                    violations.append(
                        Violation(
                            invariant=RTL_LATCH,
                            message=(
                                f"branch condition reads `{name}`, which is "
                                f"only conditionally assigned and has no "
                                f"backing register in the {model.backend} "
                                f"text (latch inference hazard)"
                            ),
                            function=function,
                            location=f"S{state.state_id}:{model.backend}",
                        )
                    )
    return violations


def _check_decls(
    model: NetlistModel,
    sm: StateMachine,
    interface: DesignInterface,
    function: str,
) -> List[Violation]:
    violations = []

    def want_port(port: str, why: str) -> None:
        if port not in model.ports:
            violations.append(
                Violation(
                    invariant=RTL_DECL,
                    message=(
                        f"interface {why} port `{port}` is not declared "
                        f"in the {model.backend} text"
                    ),
                    function=function,
                    location=model.backend,
                )
            )

    for port in ("clk", "rst", "done"):
        want_port(port, "control")
    for name in interface.scalar_inputs:
        want_port(f"{name}_in", "scalar input")
    for name in interface.input_arrays:
        want_port(f"{name}_in", "input array")
    for name in interface.scalar_outputs:
        want_port(f"{name}_out", "scalar output")
    for name in interface.output_arrays:
        want_port(f"{name}_out", "output array")
    memories = set(model.memories)
    for name in sorted(sm.func.arrays):
        if name in interface.input_arrays:
            continue
        if name not in memories:
            violations.append(
                Violation(
                    invariant=RTL_DECL,
                    message=(
                        f"array `{name}` has no memory declaration "
                        f"`m_{name}` in the {model.backend} text"
                    ),
                    function=function,
                    location=model.backend,
                )
            )
    return violations


# ---------------------------------------------------------------------------
# FSM-tier checks
# ---------------------------------------------------------------------------


def _state_successors(state: State) -> List[Optional[int]]:
    """Successor list under emitter semantics: the branch (when
    present) takes precedence over ``default_next``; ``None`` is the
    done state."""
    if state.branch is not None:
        return [state.branch.true_next, state.branch.false_next]
    return [state.default_next]


def _check_unreachable(sm: StateMachine, function: str) -> List[Violation]:
    reachable = {state.state_id for state in sm.reachable_states()}
    violations = []
    for state_id in sorted(sm.states):
        if state_id not in reachable:
            violations.append(
                Violation(
                    invariant=FSM_UNREACHABLE,
                    message=(
                        f"state S{state_id} is unreachable from the "
                        f"entry state S{sm.entry_state}"
                    ),
                    function=function,
                    location=f"S{state_id}",
                )
            )
    return violations


def _check_livelock(sm: StateMachine, function: str) -> List[Violation]:
    """Reverse reachability from the done state: every reachable state
    must have *some* path to SDONE, else the FSM can never assert
    ``done`` once it enters the offending region."""
    reachable = [state.state_id for state in sm.reachable_states()]
    can_halt: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for state_id in reachable:
            if state_id in can_halt:
                continue
            for succ in _state_successors(sm.states[state_id]):
                if succ is None or succ in can_halt:
                    can_halt.add(state_id)
                    changed = True
                    break
    violations = []
    for state_id in reachable:
        if state_id not in can_halt:
            violations.append(
                Violation(
                    invariant=FSM_LIVELOCK,
                    message=(
                        f"state S{state_id} is reachable but the done "
                        f"state is unreachable from it (livelock)"
                    ),
                    function=function,
                    location=f"S{state_id}",
                )
            )
    return violations


def _check_case(model: NetlistModel, function: str) -> List[Violation]:
    violations = []
    if not model.has_default_arm:
        violations.append(
            Violation(
                invariant=FSM_CASE,
                message=(
                    f"state case statement has no default/others arm in "
                    f"the {model.backend} text (non-exhaustive)"
                ),
                function=function,
                location=model.backend,
            )
        )
    seen: Set[str] = set()
    for label in model.case_labels:
        if label in seen:
            violations.append(
                Violation(
                    invariant=FSM_CASE,
                    message=(
                        f"case arm `{label}` appears more than once in "
                        f"the {model.backend} text (non-exclusive)"
                    ),
                    function=function,
                    location=model.backend,
                )
            )
        seen.add(label)
    return violations


def _check_dangling(model: NetlistModel, function: str) -> List[Violation]:
    declared = set(model.state_constants)
    violations = []
    for ref in sorted(model.state_refs - declared):
        violations.append(
            Violation(
                invariant=FSM_DANGLING,
                message=(
                    f"`state <= {ref}` references an undeclared state "
                    f"constant in the {model.backend} text"
                ),
                function=function,
                location=model.backend,
            )
        )
    return violations


# ---------------------------------------------------------------------------
# Cross-layer checks
# ---------------------------------------------------------------------------


def _check_cross_states(
    model: NetlistModel, sm: StateMachine, function: str
) -> List[Violation]:
    """The emitted case arms and the schedule's reachable states must
    be in bijection (SDONE has no arm by construction)."""
    expected = {
        state_constant_name(state.state_id) for state in sm.reachable_states()
    }
    labels = set(model.case_labels)
    violations = []
    for name in sorted(expected - labels):
        violations.append(
            Violation(
                invariant=CROSS_STATES,
                message=(
                    f"schedule state {name} has no case arm in the "
                    f"{model.backend} text"
                ),
                function=function,
                location=model.backend,
            )
        )
    for name in sorted(labels - expected - {"SDONE"}):
        violations.append(
            Violation(
                invariant=CROSS_STATES,
                message=(
                    f"case arm `{name}` in the {model.backend} text "
                    f"matches no schedule state"
                ),
                function=function,
                location=model.backend,
            )
        )
    return violations


def _bound_registers(
    sm: StateMachine, interface: DesignInterface
) -> Set[str]:
    """The register set the emitters derive: lifetime-crossing values
    plus the output boundary."""
    boundary = set(interface.scalar_outputs)
    return LifetimeAnalysis(sm, boundary_live=boundary).registers() | boundary


def _check_cross_binding(
    model: NetlistModel,
    bound_registers: Set[str],
    externals: Set[str],
    function: str,
) -> List[Violation]:
    violations = []
    for name in sorted(bound_registers):
        count = model.registers.count(name)
        if count != 1:
            violations.append(
                Violation(
                    invariant=CROSS_BINDING,
                    message=(
                        f"bound register `{name}` is declared {count} "
                        f"time(s) in the {model.backend} text "
                        f"(expected exactly once)"
                    ),
                    function=function,
                    location=model.backend,
                )
            )
    for name in sorted(externals):
        count = model.externals.count(name)
        if count != 1:
            violations.append(
                Violation(
                    invariant=CROSS_BINDING,
                    message=(
                        f"external FU `{name}` is declared {count} "
                        f"time(s) in the {model.backend} text "
                        f"(expected exactly once)"
                    ),
                    function=function,
                    location=model.backend,
                )
            )
    return violations


def _check_parity(
    verilog: NetlistModel, vhdl: NetlistModel, function: str
) -> List[Violation]:
    """Both emitters must declare identical signal sets.  The VHDL
    ``a_`` array shadows are a VHDL-only idiom and exempt."""
    categories = (
        ("ports", verilog.ports, vhdl.ports),
        ("registers", set(verilog.registers), set(vhdl.registers)),
        ("memories", set(verilog.memories), set(vhdl.memories)),
        ("scalars", set(verilog.scalars), set(vhdl.scalars)),
        (
            "state constants",
            set(verilog.state_constants),
            set(vhdl.state_constants),
        ),
        ("case arms", set(verilog.case_labels), set(vhdl.case_labels)),
        ("externals", set(verilog.externals), set(vhdl.externals)),
    )
    violations = []
    for label, v_names, h_names in categories:
        if v_names == h_names:
            continue
        only_v = ", ".join(sorted(v_names - h_names)) or "-"
        only_h = ", ".join(sorted(h_names - v_names)) or "-"
        violations.append(
            Violation(
                invariant=RTL_PARITY,
                message=(
                    f"backend drift in {label}: verilog-only {{{only_v}}}, "
                    f"vhdl-only {{{only_h}}}"
                ),
                function=function,
                location="verilog<->vhdl",
            )
        )
    return violations


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def verify_rtl(
    state_machine: StateMachine,
    interface: Optional[DesignInterface] = None,
    verilog: Optional[str] = None,
    vhdl: Optional[str] = None,
    invariants: Optional[Iterable[str]] = None,
    skip: Iterable[str] = (),
) -> List[Violation]:
    """Lint the emitted RTL against the schedule.

    When neither backend text is supplied, both are emitted from the
    state machine; passing exactly one restricts the text-grounded
    checks to that backend (parity needs both and is skipped
    otherwise).  ``invariants`` selects a subset of
    :data:`RTL_INVARIANTS`; ``skip`` removes ids from whatever is
    selected.
    """
    active = _selected(RTL_INVARIANTS, invariants, skip)
    if not active:
        return []
    sm = state_machine
    iface = interface or DesignInterface(name=sm.func.name)
    if verilog is None and vhdl is None:
        from repro.backend.verilog import emit_verilog
        from repro.backend.vhdl import emit_vhdl

        verilog = emit_verilog(sm, iface)
        vhdl = emit_vhdl(sm, iface)
    models: List[NetlistModel] = []
    if verilog is not None:
        models.append(parse_verilog(verilog))
    if vhdl is not None:
        models.append(parse_vhdl(vhdl))
    function = sm.func.name

    violations: List[Violation] = []
    # Schedule-grounded checks run once, regardless of backends given.
    if FSM_UNREACHABLE in active:
        violations.extend(_check_unreachable(sm, function))
    if FSM_LIVELOCK in active:
        violations.extend(_check_livelock(sm, function))

    # Text-grounded checks run once per supplied backend.
    for model in models:
        if RTL_CONFLICT in active:
            violations.extend(_check_conflicts(model, function))
        if RTL_UNDRIVEN in active:
            violations.extend(_check_undriven(model, function))
        if RTL_DEAD_REGISTER in active:
            violations.extend(_check_dead_registers(model, function))
        if RTL_LATCH in active:
            violations.extend(_check_latches(sm, model, iface, function))
        if RTL_DECL in active:
            violations.extend(_check_decls(model, sm, iface, function))
        if FSM_CASE in active:
            violations.extend(_check_case(model, function))
        if FSM_DANGLING in active:
            violations.extend(_check_dangling(model, function))
        if CROSS_STATES in active:
            violations.extend(_check_cross_states(model, sm, function))

    if CROSS_BINDING in active and models:
        externals = collect_externals(sm)
        try:
            bound = _bound_registers(sm, iface)
        except AssertionError as err:
            violations.append(
                Violation(
                    invariant=CROSS_BINDING,
                    message=f"register derivation failed: {err}",
                    function=function,
                )
            )
        else:
            for model in models:
                violations.extend(
                    _check_cross_binding(model, bound, externals, function)
                )

    if RTL_PARITY in active and len(models) == 2:
        violations.extend(_check_parity(models[0], models[1], function))
    return violations


def check_rtl(
    state_machine: StateMachine,
    interface: Optional[DesignInterface] = None,
    verilog: Optional[str] = None,
    vhdl: Optional[str] = None,
    invariants: Optional[Iterable[str]] = None,
    skip: Iterable[str] = (),
    context: str = "",
) -> None:
    """Raise :class:`VerifierError` if :func:`verify_rtl` finds any
    violation."""
    violations = verify_rtl(
        state_machine,
        interface=interface,
        verilog=verilog,
        vhdl=vhdl,
        invariants=invariants,
        skip=skip,
    )
    if violations:
        raise VerifierError(violations, context=context)


__all__ = [
    "NetlistModel",
    "NETLIST_INVARIANTS",
    "FSM_INVARIANTS",
    "CROSS_INVARIANTS",
    "RTL_INVARIANTS",
    "RTL_UNDRIVEN",
    "RTL_CONFLICT",
    "RTL_DEAD_REGISTER",
    "RTL_LATCH",
    "RTL_DECL",
    "FSM_UNREACHABLE",
    "FSM_LIVELOCK",
    "FSM_CASE",
    "FSM_DANGLING",
    "CROSS_STATES",
    "CROSS_BINDING",
    "RTL_PARITY",
    "parse_verilog",
    "parse_vhdl",
    "verify_rtl",
    "check_rtl",
]
