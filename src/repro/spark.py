"""The top-level synthesis flow — the Spark system (paper Section 4).

"This synthesis system takes a behavioral description in ANSI-C as
input and generates synthesizable register-transfer level VHDL. ...
Although Spark can apply the various transformations automatically, it
also allows the designer to control the various passes and the degree
of parallelization through script files."

:class:`SparkSession` wires everything together:

    C source --parse/lower--> HTG
      --scripted transformations--> parallelized HTG
      --chaining-aware scheduling--> FSMD
      --binding--> registers + FU instances
      --emission--> VHDL / Verilog (+ RTL simulation, + estimates)

Since the staged-flow rework the pipeline itself lives in
:mod:`repro.flow`: :meth:`SynthesisJob.execute` and
:meth:`SparkSession.run` both drive the explicit stage graph
(``frontend -> transform -> schedule -> bind -> estimate -> emit``),
recording per-stage wall clock and — for jobs carrying a
``stage_cache_dir`` — recalling content-addressed stage artifacts so
sweeps that vary only late-stage knobs never re-parse or re-transform.
"""

from __future__ import annotations

import contextlib
import importlib
import signal
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.backend.interface import DesignInterface
from repro.backend.rtl_sim import RTLResult, RTLSimulator
from repro.binding.fu_binding import FUBinding
from repro.binding.lifetimes import LifetimeAnalysis
from repro.binding.register_binding import RegisterBinding
from repro.estimation.area import AreaEstimate
from repro.estimation.delay import TimingEstimate
from repro.flow.artifacts import StageArtifactStore
from repro.flow.keys import job_stage_key
from repro.flow.pipeline import (
    FlowRequest,
    StageRecord,
    build_pass_manager,
    run_flow,
)
from repro.analysis.verifier import VerifierError
from repro.interp.evaluator import Interpreter, MachineState
from repro.ir.builder import design_from_source
from repro.ir.htg import Design
from repro.ir.printer import print_design
from repro.scheduler.list_scheduler import ChainingScheduler, SchedulingError
from repro.scheduler.ready_list import DagCache
from repro.scheduler.resources import ResourceAllocation, ResourceLibrary
from repro.scheduler.schedule import StateMachine
from repro.transforms.base import PassReport, SynthesisScript


@dataclass
class SynthesisResult:
    """Everything one synthesis run produces."""

    design: Design
    state_machine: StateMachine
    reports: List[PassReport] = field(default_factory=list)
    lifetimes: Optional[LifetimeAnalysis] = None
    register_binding: Optional[RegisterBinding] = None
    fu_binding: Optional[FUBinding] = None
    area: Optional[AreaEstimate] = None
    timing: Optional[TimingEstimate] = None
    vhdl: str = ""
    verilog: str = ""
    #: Per-stage wall clock + provenance of the run that produced this
    #: result, in stage order.
    stages: List[StageRecord] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"states: {self.state_machine.num_states}",
            f"single-cycle: {self.state_machine.is_single_cycle()}",
            f"scheduled ops: {self.state_machine.total_operations()}",
            f"critical path: {self.state_machine.max_critical_path():.2f}",
        ]
        if self.register_binding is not None:
            lines.append(f"registers: {self.register_binding.register_count}")
        if self.fu_binding is not None:
            lines.append(f"fu instances: {self.fu_binding.total_instances()}")
        if self.area is not None:
            lines.append(str(self.area))
        if self.timing is not None:
            lines.append(str(self.timing))
        if self.stages:
            parts = [
                f"{record.stage} {record.elapsed * 1000.0:.1f}ms"
                + (" (cached)" if record.cached else "")
                for record in self.stages
            ]
            lines.append("stage timing: " + ", ".join(parts))
        return "\n".join(lines)


@dataclass
class JobEnvironment:
    """Heavyweight, possibly unpicklable bindings a job resolves
    in-process: the resource library, the port interface and the
    external-function callables.  Jobs reference the environment by a
    ``"package.module:function"`` factory string (plus scalar args) so
    the job itself stays picklable across a multiprocessing pool."""

    library: Optional[ResourceLibrary] = None
    interface: Optional[DesignInterface] = None
    externals: Dict[str, Callable[..., int]] = field(default_factory=dict)


def resolve_environment_factory(
    spec: str, args: Tuple = ()
) -> JobEnvironment:
    """Resolve a ``"package.module:function"`` factory reference and
    call it with *args*; the callable must return a
    :class:`JobEnvironment`."""
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"bad environment factory {spec!r}; expected 'module:function'"
        )
    module = importlib.import_module(module_name)
    factory = getattr(module, attr)
    environment = factory(*args)
    if not isinstance(environment, JobEnvironment):
        raise TypeError(
            f"environment factory {spec!r} returned "
            f"{type(environment).__name__}, expected JobEnvironment"
        )
    return environment


#: Deterministic failures — a function of the job content alone (parse
#: errors, emission/measurement failures).  Safe to memoize:
#: re-running the same job can only fail the same way.
ERROR_KIND_INFEASIBLE = "infeasible"

#: The scheduler's constraint failures (:class:`SchedulingError`): a
#: deterministic subset that is additionally *monotone* in the clock
#: period and the resource limits — shrinking either can only keep the
#: corner unschedulable.  The only failure class the dominance pruner
#: may use as evidence.
ERROR_KIND_UNSCHEDULABLE = "unschedulable"

#: Environment/setup failures — a function of the machine, not the job
#: (missing modules, broken factories, I/O, memory pressure).  Never
#: memoized: the next run may well succeed.
ERROR_KIND_ENVIRONMENT = "environment"

#: The job's wall-clock budget ran out.  A timeout is a property of
#: the budget and the machine's speed, not of the design, so it is
#: never memoized and never used as dominance-pruning evidence.
ERROR_KIND_TIMEOUT = "timeout"

#: The static verifier (:mod:`repro.analysis.verifier`) caught an
#: invariant violation during a ``verify=True`` run.  A verifier
#: failure is a *tool* bug (a transform or the scheduler broke its
#: contract), not a property of the design point, so it is never
#: memoized as a valid outcome and never used as pruning evidence —
#: fixing the pass must make the same corner succeed.
ERROR_KIND_VERIFIER = "verifier"


class JobTimeout(Exception):
    """Raised inside :func:`execute_job` when the wall-clock deadline
    expires; never escapes — it settles as an ``error_kind="timeout"``
    outcome."""


@contextlib.contextmanager
def _job_deadline(seconds: Optional[float]) -> Iterator[bool]:
    """Arm a wall-clock deadline that raises :class:`JobTimeout`.

    Uses ``SIGALRM``, so enforcement needs a POSIX main thread — which
    is where every executor runs ``execute_job`` (in-process serial
    runs, pool worker processes, broker workers).  Anywhere else the
    deadline degrades to unenforced (yields False) rather than
    breaking the run.
    """
    enforceable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not enforceable:
        yield False
        return

    def _expired(signum: int, frame: object) -> None:
        raise JobTimeout()

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))  # type: ignore[arg-type]
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class SynthesisJob:
    """A self-contained, picklable description of one synthesis run.

    ``execute_job`` turns a job into a :class:`SynthesisOutcome`; the
    pair is the unit the design-space exploration engine fans out
    across worker processes and memoizes on disk.

    Attributes
    ----------
    source:
        the behavioral C text.
    script:
        the transformation/scheduling knobs (plain-data dataclass).
    entity:
        entity/module name for emission (also the default interface).
    label:
        human-readable tag carried into the outcome (e.g. the grid
        point description).
    environment / environment_args:
        optional ``"module:function"`` factory resolved *inside the
        worker* to a :class:`JobEnvironment` (library, interface,
        externals) — callables never cross the process boundary.
    inputs / array_inputs:
        RTL stimulus used when ``measure`` is set.
    measure:
        simulate the scheduled design on the stimulus and record the
        measured cycle count.
    emit:
        carry the emitted VHDL/Verilog text in the outcome.
    timeout:
        wall-clock budget in seconds for one execution; ``None`` (the
        default) means unbounded.  A job that runs out settles as an
        ``error_kind="timeout"`` outcome.
    priority:
        claim-ordering hint for distributed execution: the filesystem
        broker drains higher-priority jobs first (ties in submission
        order).  Scheduling metadata, like ``timeout`` — never part of
        the job's content fingerprint.
    stage_cache_dir:
        storage location for content-addressed stage artifacts: a
        directory, or a :mod:`repro.dse.storage` backend spec string
        such as ``sqlite:<dir>`` (usually the outcome cache's spec,
        stamped by the exploration engine); empty disables stage
        caching.  A *location*, not content — it rides the wire
        format so pool and broker workers share artifacts, but is
        excluded from the fingerprint.
    verify:
        run the static verifier (:mod:`repro.analysis.verifier`)
        after every transform pass and at every stage boundary; a
        violation settles as an ``error_kind="verifier"`` outcome.
        Execution *mode*, not content — verification never changes
        what a correct flow computes, so it is excluded from the
        fingerprint (a previously *verified* cached outcome may serve
        an unverified request; the reverse is guarded by the cache's
        ``require_verified``).
    lint_rtl:
        run the static RTL linter (:mod:`repro.analysis.rtl`) over
        both emitted backends at the emit stage boundary; a violation
        settles as an ``error_kind="verifier"`` outcome, exactly like
        a pass-level verifier failure.  Execution *mode* like
        ``verify`` — excluded from the fingerprint for the same
        reason.
    """

    source: str
    script: SynthesisScript = field(default_factory=SynthesisScript)
    entity: str = "design"
    label: str = ""
    environment: str = ""
    environment_args: Tuple = ()
    inputs: Dict[str, int] = field(default_factory=dict)
    array_inputs: Dict[str, List[int]] = field(default_factory=dict)
    measure: bool = False
    emit: bool = False
    timeout: Optional[float] = None
    priority: int = 0
    stage_cache_dir: str = ""
    verify: bool = False
    lint_rtl: bool = False

    def execute(self) -> "SynthesisOutcome":
        """Run this job through the staged flow; sugar for
        :func:`execute_job`."""
        return execute_job(self)

    def resolve_environment(self) -> JobEnvironment:
        if not self.environment:
            return JobEnvironment()
        return resolve_environment_factory(
            self.environment, self.environment_args
        )

    def fingerprint_data(self) -> Dict[str, object]:
        """Canonical plain-data description for content hashing (sets
        become sorted lists so the JSON encoding is stable).

        Deliberately excludes ``timeout``, ``priority`` and
        ``stage_cache_dir``: budgets and claim ordering change when an
        attempt is scheduled, never what a completed run computes, and
        the stage-artifact location is machine configuration — keying
        on any of them would only fragment the cache."""
        script = asdict(self.script)
        script["pure_functions"] = sorted(script["pure_functions"])
        script["output_scalars"] = sorted(script["output_scalars"])
        script["unroll_loops"] = sorted(script["unroll_loops"].items())
        script["resource_limits"] = sorted(script["resource_limits"].items())
        return {
            "source": self.source,
            "script": script,
            "entity": self.entity,
            "environment": self.environment,
            "environment_args": list(self.environment_args),
            "inputs": sorted(self.inputs.items()),
            "array_inputs": sorted(
                (name, list(values))
                for name, values in self.array_inputs.items()
            ),
            "measure": self.measure,
            "emit": self.emit,
        }

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable description that :meth:`from_dict`
        restores exactly — the wire format of the filesystem job
        broker (sets become sorted lists)."""
        data = asdict(self)
        script = data["script"]
        script["pure_functions"] = sorted(script["pure_functions"])
        script["output_scalars"] = sorted(script["output_scalars"])
        data["environment_args"] = list(self.environment_args)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SynthesisJob":
        """Rebuild a job from :meth:`to_dict` output.  Unknown fields
        are ignored so brokers survive mixed package versions."""
        known = {
            name: data[name]
            for name in cls.__dataclass_fields__
            if name in data
        }
        script_data = dict(known.get("script") or {})
        script_known = {
            name: script_data[name]
            for name in SynthesisScript.__dataclass_fields__
            if name in script_data
        }
        for field_name in ("pure_functions", "output_scalars"):
            if field_name in script_known:
                script_known[field_name] = set(script_known[field_name])
        known["script"] = SynthesisScript(**script_known)
        known["environment_args"] = tuple(known.get("environment_args", ()))
        return cls(**known)


@dataclass
class SynthesisOutcome:
    """The picklable, JSON-serializable result of one job.

    Carries the ranking metrics the exploration engine needs (schedule
    length, latency, area, timing) rather than the live IR objects a
    :class:`SynthesisResult` holds.
    """

    label: str = ""
    ok: bool = True
    error: str = ""
    #: Failure class when ``ok`` is False:
    #: :data:`ERROR_KIND_UNSCHEDULABLE` for the scheduler's monotone
    #: constraint failures, :data:`ERROR_KIND_INFEASIBLE` for other
    #: deterministic failures, :data:`ERROR_KIND_ENVIRONMENT` for
    #: machine/setup trouble (never cached),
    #: :data:`ERROR_KIND_VERIFIER` for static invariant violations
    #: caught by a ``verify=True`` run (a tool bug — never cached).
    #: Empty when ``ok``.
    error_kind: str = ""
    num_states: int = 0
    single_cycle: bool = False
    scheduled_ops: int = 0
    critical_path: float = 0.0
    min_clock: float = 0.0
    clock_period: float = 0.0
    registers: int = 0
    fu_instances: int = 0
    area_total: float = 0.0
    measured_cycles: Optional[int] = None
    latency: float = 0.0
    vhdl: str = ""
    verilog: str = ""
    elapsed: float = 0.0
    #: Per-stage wall clock + hit/miss provenance of the run that
    #: produced this outcome, as plain dicts (``stage`` / ``elapsed``
    #: / ``cached``) in stage order.  Persisted with the outcome, so a
    #: recalled entry shows where its *original* run spent its time;
    #: the engine's live breakdown aggregates freshly-run outcomes
    #: only.  May be partial for infeasible corners (the records up to
    #: the failing stage) and may end with a ``measure`` record when
    #: the job simulated a stimulus.
    stages: List[Dict[str, object]] = field(default_factory=list)
    #: Whether the run that produced this outcome had the static
    #: verifier enabled (``SynthesisJob.verify``).  Persisted with the
    #: outcome: a verified entry may serve unverified requests, but an
    #: unverified entry reads as a miss for ``--verify-each`` sweeps
    #: (see :meth:`repro.dse.cache.ResultCache.get`).
    verified: bool = False
    cached: bool = False
    #: Where this outcome came from, per invocation: ``"run"`` (fresh
    #: execution), ``"cache"`` (recalled), ``"pruned"`` (inferred
    #: infeasible by dominance, never executed), or ``"dedup"`` (a
    #: within-sweep duplicate replaying the first occurrence's
    #: outcome).  Not persisted.
    provenance: str = "run"

    @property
    def cacheable(self) -> bool:
        """Whether memoizing this outcome is sound: successes and
        deterministic infeasibility, never environment trouble,
        expired wall-clock budgets, or outcomes that were themselves
        inferred rather than executed."""
        if self.provenance == "pruned":
            return False
        return self.ok or self.error_kind in (
            ERROR_KIND_INFEASIBLE,
            ERROR_KIND_UNSCHEDULABLE,
        )

    @property
    def cycles(self) -> int:
        """Best available schedule length: measured when the job ran a
        stimulus, otherwise the static state count."""
        if self.measured_cycles is not None:
            return self.measured_cycles
        return self.num_states

    def score(self) -> Tuple:
        """Deterministic ranking key: feasible first, then estimated
        latency, then area, then label as the final tiebreak."""
        return (0 if self.ok else 1, self.latency, self.area_total, self.label)

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data.pop("cached")  # per-invocation, never persisted
        data.pop("provenance")
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SynthesisOutcome":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        known.pop("cached", None)
        known.pop("provenance", None)
        return cls(**known)


class _BatchContext:
    """Worker-local reuse state for one :func:`execute_job_batch` call.

    ``artifacts`` maps a transform-stage key to the in-memory
    ``(design, reports)`` snapshot the first corner with that prefix
    produced (computed, or unpickled from the stage store *once*);
    sibling corners run the remaining stages straight from it.
    ``dag_caches`` scopes one :class:`DagCache` per (transform key,
    environment factory reference): corners sharing a snapshot *and* a
    resource library reuse each block's dependence DAG + priority
    computation, rebuilding only clock/allocation placement state.

    Sharing one design across corners is sound because no stage after
    transform mutates it (scheduler, binding, estimation, emission
    and RTL simulation all read the design or operate on the state
    machine); environments are still resolved per corner — stateful
    externals must never leak between jobs.
    """

    def __init__(self) -> None:
        self.artifacts: Dict[str, Tuple[Design, List[PassReport]]] = {}
        self.dag_caches: Dict[Tuple, DagCache] = {}


def execute_job(job: SynthesisJob) -> SynthesisOutcome:
    """Run one job start to finish; never raises — failures come back
    as ``ok=False`` outcomes so a sweep survives infeasible corners.

    Failures are classified on the way out: anything thrown while
    resolving the environment factory (import errors, broken
    factories) and machine-level trouble during synthesis (``OSError``,
    ``MemoryError``) is :data:`ERROR_KIND_ENVIRONMENT` — transient,
    never memoized.  A job whose wall-clock budget (``job.timeout``)
    expires is :data:`ERROR_KIND_TIMEOUT` — also never memoized, and
    never dominance evidence.  Everything else is a deterministic
    function of the job content and tagged
    :data:`ERROR_KIND_INFEASIBLE`.
    """
    return _execute_one(job, None)


def execute_job_batch(
    jobs: List[SynthesisJob],
    on_outcome: Optional[
        Callable[[SynthesisJob, SynthesisOutcome], None]
    ] = None,
) -> List[SynthesisOutcome]:
    """Run several jobs in this process, reusing in-memory state
    across corners that share a transform prefix.

    The batched counterpart of :func:`execute_job`: outcomes are
    identical job for job (same stage keys, same cache entries — the
    snapshot short-circuit is observationally a stage-store hit), but
    a batch unpickles or computes each distinct transform snapshot
    **once** and drives the remaining stages per corner from memory,
    eliminating the per-corner pickle/probe overhead a warm sweep is
    otherwise dominated by.

    *on_outcome*, when given, fires after each corner settles — the
    broker worker publishes per-corner results through it, so a batch
    dying mid-way loses only the unexecuted tail.  Never raises;
    per-job failures settle as ``ok=False`` outcomes exactly as in
    :func:`execute_job`.
    """
    context = _BatchContext()
    outcomes: List[SynthesisOutcome] = []
    for job in jobs:
        outcome = _execute_one(job, context)
        outcomes.append(outcome)
        if on_outcome is not None:
            on_outcome(job, outcome)
    return outcomes


def _execute_one(
    job: SynthesisJob, context: Optional[_BatchContext]
) -> SynthesisOutcome:
    started = time.perf_counter()
    outcome = SynthesisOutcome(label=job.label)
    try:
        with _job_deadline(job.timeout):
            _execute_job_body(job, outcome, context)
    except JobTimeout:
        outcome.ok = False
        outcome.error_kind = ERROR_KIND_TIMEOUT
        outcome.error = (
            f"timeout: exceeded the {job.timeout:g}s wall-clock budget"
        )
    outcome.elapsed = time.perf_counter() - started
    outcome.verified = bool(job.verify)
    return outcome


def _execute_job_body(
    job: SynthesisJob,
    outcome: SynthesisOutcome,
    context: Optional[_BatchContext] = None,
) -> None:
    """The classification core of :func:`execute_job`: drives the
    staged flow and fills *outcome* in place, letting only
    :class:`JobTimeout` escape (so the deadline wins over every other
    failure class).  Stage timing records accumulate in the outcome
    even when a stage fails, so an infeasible corner still reports
    where its wall clock went."""
    try:
        environment = job.resolve_environment()
    except JobTimeout:
        raise
    except Exception as error:
        outcome.ok = False
        outcome.error_kind = ERROR_KIND_ENVIRONMENT
        outcome.error = f"{type(error).__name__}: {error}"
        return
    records: List[StageRecord] = []
    store: Optional[StageArtifactStore] = None
    if job.stage_cache_dir:
        # JobTimeout must pierce the store's broad corrupt-artifact
        # handling: an alarm firing mid-unpickle is a deadline, not a
        # damaged entry.
        store = StageArtifactStore(
            job.stage_cache_dir, passthrough=(JobTimeout,)
        )
    preloaded: Optional[Tuple[Design, List[PassReport]]] = None
    capture: Optional[Dict[str, object]] = None
    dag_cache: Optional[DagCache] = None
    transform_key = ""
    if context is not None:
        transform_key = job_stage_key(job, "transform")
        preloaded = context.artifacts.get(transform_key)
        if preloaded is None:
            capture = {}
        dag_cache = context.dag_caches.setdefault(
            (
                transform_key,
                job.environment,
                tuple(job.environment_args),
            ),
            DagCache(),
        )
    try:
        flow = run_flow(
            FlowRequest(
                source=job.source,
                script=job.script,
                entity=job.entity,
                environment=job.environment,
                environment_args=tuple(job.environment_args),
                library=environment.library,
                interface=environment.interface
                or DesignInterface(name=job.entity),
                bind=True,
                emit=job.emit,
                verify=job.verify,
                lint_rtl=job.lint_rtl,
            ),
            store=store,
            records=records,
            preloaded=preloaded,
            capture=capture,
            dag_cache=dag_cache,
        )
        sm = flow.state_machine
        outcome.num_states = sm.num_states
        outcome.single_cycle = sm.is_single_cycle()
        outcome.scheduled_ops = sm.total_operations()
        outcome.critical_path = sm.max_critical_path()
        outcome.clock_period = job.script.clock_period
        if flow.timing is not None:
            outcome.min_clock = flow.timing.min_clock_period
        if flow.register_binding is not None:
            outcome.registers = flow.register_binding.register_count
        if flow.fu_binding is not None:
            outcome.fu_instances = flow.fu_binding.total_instances()
        if flow.area is not None:
            outcome.area_total = flow.area.total
        if job.emit:
            outcome.vhdl = flow.vhdl
            outcome.verilog = flow.verilog
        if job.measure:
            started = time.perf_counter()
            sim = RTLSimulator(sm, externals=environment.externals)
            rtl = sim.run(
                inputs=dict(job.inputs) or None,
                array_inputs={
                    name: list(values)
                    for name, values in job.array_inputs.items()
                }
                or None,
            )
            outcome.measured_cycles = rtl.cycles
            records.append(
                StageRecord(
                    stage="measure",
                    elapsed=time.perf_counter() - started,
                )
            )
        outcome.latency = outcome.cycles * job.script.clock_period
    except JobTimeout:
        raise
    except (OSError, MemoryError) as error:  # machine trouble, not the job
        outcome.ok = False
        outcome.error_kind = ERROR_KIND_ENVIRONMENT
        outcome.error = f"{type(error).__name__}: {error}"
    except SchedulingError as error:  # constraint-bound: monotone evidence
        outcome.ok = False
        outcome.error_kind = ERROR_KIND_UNSCHEDULABLE
        outcome.error = f"{type(error).__name__}: {error}"
    except VerifierError as error:  # a pass broke its contract
        outcome.ok = False
        outcome.error_kind = ERROR_KIND_VERIFIER
        outcome.error = str(error)
    except Exception as error:  # parse error, emission/measurement, ...
        outcome.ok = False
        outcome.error_kind = ERROR_KIND_INFEASIBLE
        outcome.error = f"{type(error).__name__}: {error}"
    finally:
        # Even a corner that failed (or timed out) *after* its
        # transform resolved donates the snapshot: sibling corners
        # differ only in later-stage knobs, so the artifact is valid
        # for them regardless of how this corner ended.
        if (
            context is not None
            and capture is not None
            and "transform" in capture
        ):
            context.artifacts[transform_key] = capture[
                "transform"
            ]  # type: ignore[assignment]
        outcome.stages = [record.to_dict() for record in records]


class SparkSession:
    """One synthesis run over one behavioral description."""

    def __init__(
        self,
        source: str,
        script: Optional[SynthesisScript] = None,
        library: Optional[ResourceLibrary] = None,
        interface: Optional[DesignInterface] = None,
        externals: Optional[Dict[str, Callable[..., int]]] = None,
    ) -> None:
        self.script = script or SynthesisScript()
        self.library = library or ResourceLibrary()
        self.interface = interface
        self.externals = externals or {}
        self.design = design_from_source(source)
        self.reports: List[PassReport] = []

    @classmethod
    def from_job(
        cls,
        job: SynthesisJob,
        environment: Optional[JobEnvironment] = None,
    ) -> "SparkSession":
        """Construct the session a :class:`SynthesisJob` describes,
        resolving its environment factory in this process (pass a
        pre-resolved *environment* to skip that step)."""
        if environment is None:
            environment = job.resolve_environment()
        return cls(
            job.source,
            script=job.script,
            library=environment.library,
            interface=environment.interface
            or DesignInterface(name=job.entity),
            externals=environment.externals,
        )

    @classmethod
    def from_design(
        cls,
        design: Design,
        script: Optional[SynthesisScript] = None,
        library: Optional[ResourceLibrary] = None,
        interface: Optional[DesignInterface] = None,
        externals: Optional[Dict[str, Callable[..., int]]] = None,
    ) -> "SparkSession":
        """Start a session from an already-built (possibly already
        transformed) design instead of source text — the entry point
        for source-level pre-passes such as the Fig 16 while-to-for
        rewrite."""
        session = cls.__new__(cls)
        session.script = script or SynthesisScript()
        session.library = library or ResourceLibrary()
        session.interface = interface
        session.externals = externals or {}
        session.design = design
        session.reports = []
        return session

    # -- the flow -------------------------------------------------------------

    def transform(self) -> Design:
        """Apply the scripted transformation pipeline in the paper's
        order: inline -> speculate -> unroll -> constant-propagate ->
        re-speculate -> cleanup (Section 6 sequence, with fine-grain
        passes interleaved as supporting transformations; the pipeline
        itself is :func:`repro.flow.build_pass_manager`)."""
        manager = build_pass_manager(self.script)
        manager.run_until_fixpoint(self.design)
        self.reports.extend(manager.reports)
        return self.design

    def schedule(self) -> StateMachine:
        """Schedule main under the script's clock and allocation."""
        scheduler = ChainingScheduler(
            library=self.library,
            clock_period=self.script.clock_period,
            allocation=ResourceAllocation(limits=dict(self.script.resource_limits)),
            priority=self.script.scheduler_priority,
        )
        return scheduler.schedule(self.design.main)

    def run(
        self,
        bind: bool = True,
        emit: bool = True,
        verify: bool = False,
        lint_rtl: bool = False,
    ) -> SynthesisResult:
        """Full flow — drives the explicit stage graph of
        :func:`repro.flow.run_flow` over this session's (already
        parsed) design: transform, schedule, bind, estimate, emit.
        The result carries per-stage timing records
        (``result.stages``, surfaced by :meth:`SynthesisResult.summary`).
        With *verify* set, the static verifier runs after every
        transform pass and stage boundary, raising
        :class:`repro.analysis.verifier.VerifierError` on a violation.
        With *lint_rtl* set, the static RTL linter
        (:mod:`repro.analysis.rtl`) additionally checks both emitted
        backends at the emit stage boundary, raising the same
        exception type.
        """
        flow = run_flow(
            FlowRequest(
                script=self.script,
                design=self.design,
                library=self.library,
                interface=self.interface,
                bind=bind,
                emit=emit,
                verify=verify,
                lint_rtl=lint_rtl,
            )
        )
        self.reports.extend(flow.reports)
        return SynthesisResult(
            design=flow.design,
            state_machine=flow.state_machine,
            reports=self.reports,
            lifetimes=flow.lifetimes,
            register_binding=flow.register_binding,
            fu_binding=flow.fu_binding,
            area=flow.area,
            timing=flow.timing,
            vhdl=flow.vhdl,
            verilog=flow.verilog,
            stages=flow.records,
        )

    # -- validation helpers -----------------------------------------------------

    def interpret(
        self,
        inputs: Optional[Dict[str, int]] = None,
        array_inputs: Optional[Dict[str, List[int]]] = None,
    ) -> MachineState:
        """Run the *current* design through the behavioral interpreter."""
        interp = Interpreter(self.design, externals=self.externals)
        return interp.run(inputs=inputs, array_inputs=array_inputs)

    def simulate_rtl(
        self,
        sm: StateMachine,
        inputs: Optional[Dict[str, int]] = None,
        array_inputs: Optional[Dict[str, List[int]]] = None,
    ) -> RTLResult:
        """Run the scheduled design through the RTL simulator."""
        sim = RTLSimulator(sm, externals=self.externals)
        return sim.run(inputs=inputs, array_inputs=array_inputs)

    def print_code(self) -> str:
        """The current IR as C-like text (regenerates the paper's code
        figures at each pipeline stage)."""
        return print_design(self.design)


def synthesize(
    source: str,
    script: Optional[SynthesisScript] = None,
    library: Optional[ResourceLibrary] = None,
    interface: Optional[DesignInterface] = None,
    externals: Optional[Dict[str, Callable[..., int]]] = None,
) -> SynthesisResult:
    """One-call convenience flow."""
    session = SparkSession(
        source,
        script=script,
        library=library,
        interface=interface,
        externals=externals,
    )
    return session.run()
