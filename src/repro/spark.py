"""The top-level synthesis flow — the Spark system (paper Section 4).

"This synthesis system takes a behavioral description in ANSI-C as
input and generates synthesizable register-transfer level VHDL. ...
Although Spark can apply the various transformations automatically, it
also allows the designer to control the various passes and the degree
of parallelization through script files."

:class:`SparkSession` wires everything together:

    C source --parse/lower--> HTG
      --scripted transformations--> parallelized HTG
      --chaining-aware scheduling--> FSMD
      --binding--> registers + FU instances
      --emission--> VHDL / Verilog (+ RTL simulation, + estimates)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.backend.interface import DesignInterface
from repro.backend.rtl_sim import RTLResult, RTLSimulator
from repro.backend.verilog import emit_verilog
from repro.backend.vhdl import emit_vhdl
from repro.binding.fu_binding import FUBinding, bind_functional_units
from repro.binding.lifetimes import LifetimeAnalysis
from repro.binding.register_binding import RegisterBinding, bind_registers
from repro.estimation.area import AreaEstimate, estimate_area
from repro.estimation.delay import TimingEstimate, estimate_timing
from repro.interp.evaluator import Interpreter, MachineState
from repro.ir.builder import design_from_source
from repro.ir.htg import Design
from repro.ir.printer import print_design
from repro.scheduler.list_scheduler import ChainingScheduler
from repro.scheduler.resources import ResourceAllocation, ResourceLibrary
from repro.scheduler.schedule import StateMachine
from repro.transforms.base import PassManager, PassReport, SynthesisScript
from repro.transforms.code_motion import DataflowLevelReorder, TrailblazingHoist
from repro.transforms.cond_speculation import (
    ConditionalSpeculation,
    ReverseSpeculation,
)
from repro.transforms.cse import LocalCSE
from repro.transforms.const_prop import ConstantPropagation
from repro.transforms.copy_prop import CopyPropagation
from repro.transforms.dce import DeadCodeElimination
from repro.transforms.inline import FunctionInliner
from repro.transforms.lower_tac import TACLowering
from repro.transforms.speculation import EarlyConditionExecution, Speculation
from repro.transforms.unroll import LoopUnroller


@dataclass
class SynthesisResult:
    """Everything one synthesis run produces."""

    design: Design
    state_machine: StateMachine
    reports: List[PassReport] = field(default_factory=list)
    lifetimes: Optional[LifetimeAnalysis] = None
    register_binding: Optional[RegisterBinding] = None
    fu_binding: Optional[FUBinding] = None
    area: Optional[AreaEstimate] = None
    timing: Optional[TimingEstimate] = None
    vhdl: str = ""
    verilog: str = ""

    def summary(self) -> str:
        lines = [
            f"states: {self.state_machine.num_states}",
            f"single-cycle: {self.state_machine.is_single_cycle()}",
            f"scheduled ops: {self.state_machine.total_operations()}",
            f"critical path: {self.state_machine.max_critical_path():.2f}",
        ]
        if self.register_binding is not None:
            lines.append(f"registers: {self.register_binding.register_count}")
        if self.fu_binding is not None:
            lines.append(f"fu instances: {self.fu_binding.total_instances()}")
        if self.area is not None:
            lines.append(str(self.area))
        if self.timing is not None:
            lines.append(str(self.timing))
        return "\n".join(lines)


class SparkSession:
    """One synthesis run over one behavioral description."""

    def __init__(
        self,
        source: str,
        script: Optional[SynthesisScript] = None,
        library: Optional[ResourceLibrary] = None,
        interface: Optional[DesignInterface] = None,
        externals: Optional[Dict[str, Callable[..., int]]] = None,
    ) -> None:
        self.script = script or SynthesisScript()
        self.library = library or ResourceLibrary()
        self.interface = interface
        self.externals = externals or {}
        self.design = design_from_source(source)
        self.reports: List[PassReport] = []

    @classmethod
    def from_design(
        cls,
        design: Design,
        script: Optional[SynthesisScript] = None,
        library: Optional[ResourceLibrary] = None,
        interface: Optional[DesignInterface] = None,
        externals: Optional[Dict[str, Callable[..., int]]] = None,
    ) -> "SparkSession":
        """Start a session from an already-built (possibly already
        transformed) design instead of source text — the entry point
        for source-level pre-passes such as the Fig 16 while-to-for
        rewrite."""
        session = cls.__new__(cls)
        session.script = script or SynthesisScript()
        session.library = library or ResourceLibrary()
        session.interface = interface
        session.externals = externals or {}
        session.design = design
        session.reports = []
        return session

    # -- the flow -------------------------------------------------------------

    def transform(self) -> Design:
        """Apply the scripted transformation pipeline in the paper's
        order: inline -> speculate -> unroll -> constant-propagate ->
        re-speculate -> cleanup (Section 6 sequence, with fine-grain
        passes interleaved as supporting transformations)."""
        script = self.script
        pure = set(script.pure_functions)

        manager = PassManager()
        if script.inline_functions:
            manager.add(FunctionInliner(script.inline_functions))
        if script.enable_early_condition_execution:
            manager.add(EarlyConditionExecution())
        if script.enable_speculation:
            manager.add(Speculation(pure_functions=pure))
        if script.enable_reverse_speculation:
            manager.add(ReverseSpeculation(pure_functions=pure))
        if script.enable_conditional_speculation:
            manager.add(ConditionalSpeculation(pure_functions=pure))
        if script.unroll_loops:
            manager.add(LoopUnroller(dict(script.unroll_loops)))
        if script.enable_constant_propagation:
            manager.add(ConstantPropagation())
        if script.enable_copy_propagation:
            manager.add(CopyPropagation())
        if script.enable_cse:
            manager.add(LocalCSE(pure_functions=pure))
        if script.enable_dce:
            manager.add(
                DeadCodeElimination(
                    output_scalars=script.output_scalars or None,
                    pure_functions=pure,
                )
            )
        if script.enable_code_motion:
            manager.add(TrailblazingHoist(pure_functions=pure))
            manager.add(DataflowLevelReorder(pure_functions=pure))
        if script.enable_tac_lowering:
            manager.add(TACLowering())
        manager.run_until_fixpoint(self.design)
        self.reports.extend(manager.reports)
        return self.design

    def schedule(self) -> StateMachine:
        """Schedule main under the script's clock and allocation."""
        scheduler = ChainingScheduler(
            library=self.library,
            clock_period=self.script.clock_period,
            allocation=ResourceAllocation(limits=dict(self.script.resource_limits)),
        )
        return scheduler.schedule(self.design.main)

    def run(self, bind: bool = True, emit: bool = True) -> SynthesisResult:
        """Full flow: transform, schedule, bind, estimate, emit."""
        self.transform()
        sm = self.schedule()
        result = SynthesisResult(
            design=self.design, state_machine=sm, reports=self.reports
        )
        boundary = set(self.script.output_scalars)
        if bind:
            result.lifetimes = LifetimeAnalysis(sm, boundary_live=boundary)
            result.register_binding = bind_registers(
                sm, boundary_live=boundary, lifetimes=result.lifetimes
            )
            result.fu_binding = bind_functional_units(sm, self.library)
            result.area = estimate_area(
                sm,
                library=self.library,
                fu_binding=result.fu_binding,
                register_binding=result.register_binding,
                boundary_live=boundary,
            )
            result.timing = estimate_timing(sm)
        if emit:
            interface = self.interface or DesignInterface(
                name=self.design.main.name
            )
            result.vhdl = emit_vhdl(sm, interface)
            result.verilog = emit_verilog(sm, interface)
        return result

    # -- validation helpers -----------------------------------------------------

    def interpret(
        self,
        inputs: Optional[Dict[str, int]] = None,
        array_inputs: Optional[Dict[str, List[int]]] = None,
    ) -> MachineState:
        """Run the *current* design through the behavioral interpreter."""
        interp = Interpreter(self.design, externals=self.externals)
        return interp.run(inputs=inputs, array_inputs=array_inputs)

    def simulate_rtl(
        self,
        sm: StateMachine,
        inputs: Optional[Dict[str, int]] = None,
        array_inputs: Optional[Dict[str, List[int]]] = None,
    ) -> RTLResult:
        """Run the scheduled design through the RTL simulator."""
        sim = RTLSimulator(sm, externals=self.externals)
        return sim.run(inputs=inputs, array_inputs=array_inputs)

    def print_code(self) -> str:
        """The current IR as C-like text (regenerates the paper's code
        figures at each pipeline stage)."""
        return print_design(self.design)


def synthesize(
    source: str,
    script: Optional[SynthesisScript] = None,
    library: Optional[ResourceLibrary] = None,
    interface: Optional[DesignInterface] = None,
    externals: Optional[Dict[str, Callable[..., int]]] = None,
) -> SynthesisResult:
    """One-call convenience flow."""
    session = SparkSession(
        source,
        script=script,
        library=library,
        interface=interface,
        externals=externals,
    )
    return session.run()
